"""Trace compiler: absint-certified schedule optimization (ROADMAP item).

The hand-transcribed workload schedules follow the paper's figures, which
means they inherit the figures' conservatism: chains sized for the
deepest benchmark, app scales pinned at the global default, levels kept
around "just in case".  BitPacker's packed residues make the modulus
chain track each level's *actual* scale, so any slack the abstract
interpreter (:mod:`repro.analysis.absint`) can prove is slack the chain
can shed — fewer levels and a narrower ``Q`` compound through every
downstream model (fewer residues per op, fewer kernel calls, smaller
keys).

:func:`compile_trace` runs a fixed pass pipeline over one
:class:`~repro.trace.program.HeTrace`:

1. **analyze** — ``verify_or_raise`` on the input: the compiler refuses
   (never silently drops) traces that fail static verification.
2. **elide-rescale** — drop rescales the verifier flags as
   ``trace-elidable-rescale`` (never-multiplied ciphertexts in a uniform
   scale region; bootstrap-span conversions are load-bearing and the
   verifier no longer flags them), shifting the downstream level walk up
   by one.
3. **elide-adjust** — drop adjusts flagged ``trace-elidable-adjust``
   (no live compute at the source level).
4. **sink-rescale** — rewrite ``c`` parallel rescales feeding a tree-add
   into one add-then-rescale (``c-1`` rescales saved), when the trace
   records that exact pattern.
5. **truncate-levels** — remove chain levels no op ever touches (unused
   bottom levels after adjusts, unused top levels), relabeling ops and
   slicing the scale targets; ``Q_top`` shrinks by the dropped targets.
6. **tighten-scales** — lower the application region's scale targets
   (the bottom uniform run) by the largest ``delta`` that keeps the
   verified noise margin at or above :data:`MIN_NOISE_MARGIN_BITS`.
7. **tighten-base** — shrink ``base_bits`` into the verifier's measured
   per-level slack, keeping :data:`BASE_SAFETY_BITS` in reserve.

**Soundness.**  Every rewrite is certified: the pipeline re-runs
``verify_trace`` after each pass and reverts the pass wholesale if it
introduced any violation or dropped the noise margin below the floor.
The final trace is certified once more by ``verify_or_raise``, so a
:class:`CompiledTrace` is by construction violation-free.  Level/scale
semantics are additionally guarded structurally (elision only inside
uniform-scale regions, never across an ADJUST or bootstrap entry).

The result carries provenance: the canonical content digest of both the
source and the compiled trace (:func:`repro.trace.program
.content_digest`), so serve admission and eval caches keyed on trace
content distinguish the two and a recompilation invalidates stale
verdicts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Callable, Sequence

from repro.analysis.absint import (
    VerifyResult,
    verify_or_raise,
    verify_trace,
)
from repro.errors import ParameterError
from repro.obs import core as _obs
from repro.trace.program import HeTrace, OpKind, TraceOp, content_digest

if TYPE_CHECKING:  # pragma: no cover
    from repro.schemes.chain import ModulusChain

#: Noise-margin floor a compiled schedule must keep (bits of error-free
#: mantissa at the worst op).  12 is the seed schedules' own observed
#: minimum across the bundled workloads, so compilation never degrades a
#: workload below what the hand schedules already accept.
MIN_NOISE_MARGIN_BITS = 12.0

#: Largest per-level scale reduction tighten-scales will attempt.
MAX_SCALE_DELTA_BITS = 6.0

#: Modulus bits tighten-base leaves on top of the verifier's headroom.
BASE_SAFETY_BITS = 1.0


@dataclass(frozen=True)
class PassResult:
    """One pipeline pass: how many rewrites it performed."""

    name: str
    rewrites: float
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "rewrites": self.rewrites,
                "detail": self.detail}


@dataclass(frozen=True)
class CompiledTrace:
    """A compiled schedule plus its provenance and savings report."""

    trace: HeTrace
    scheme: str
    word_bits: int
    source_digest: str
    digest: str
    passes: tuple[PassResult, ...]
    levels_before: int
    levels_after: int
    log2_q_before: float
    log2_q_after: float
    noise_margin_before: float
    noise_margin_after: float
    ops_elided: float
    chain: "ModulusChain | None" = None

    @property
    def levels_saved(self) -> int:
        return self.levels_before - self.levels_after

    @property
    def log2_q_saved(self) -> float:
        return self.log2_q_before - self.log2_q_after

    @property
    def changed(self) -> bool:
        return self.digest != self.source_digest

    def to_dict(self) -> dict:
        from repro.schemes import chain_to_dict

        return {
            "trace": self.trace.to_dict(),
            "scheme": self.scheme,
            "word_bits": self.word_bits,
            "source_digest": self.source_digest,
            "digest": self.digest,
            "passes": [p.to_dict() for p in self.passes],
            "levels_before": self.levels_before,
            "levels_after": self.levels_after,
            "log2_q_before": self.log2_q_before,
            "log2_q_after": self.log2_q_after,
            "noise_margin_before": self.noise_margin_before,
            "noise_margin_after": self.noise_margin_after,
            "ops_elided": self.ops_elided,
            "chain": None if self.chain is None else chain_to_dict(self.chain),
        }


# -- rewrite passes ------------------------------------------------------
# Each pass maps (trace, its VerifyResult) to (new trace, rewrite count,
# human detail).  Passes may assume the input verified clean; the driver
# re-verifies their output and reverts on any violation.


def _shift_ops(ops: Sequence[TraceOp], offset: int) -> list[TraceOp]:
    return [
        replace(
            op,
            level=op.level + offset,
            dst_level=None if op.dst_level is None else op.dst_level + offset,
        )
        for op in ops
    ]


def _pass_elide_rescale(
    trace: HeTrace, result: VerifyResult
) -> tuple[HeTrace, float, str]:
    """Drop one verifier-flagged redundant rescale (rule
    ``trace-elidable-rescale``), shifting the downstream walk up a level.

    The shift stops at the next bootstrap entry (an op back at the top
    level) and is attempted only when every shifted op keeps its scale
    target and the shifted region contains no ADJUST — both would change
    value semantics rather than relabel the same walk.  The driver loops
    the pass to a fixpoint, so multiple flagged rescales elide one at a
    time, each re-certified.
    """
    flagged = [f.line for f in result.waste if f.rule == "trace-elidable-rescale"]
    targets = trace.level_scale_bits
    for index in flagged:
        if not 0 <= index < len(trace.ops):
            continue
        op = trace.ops[index]
        if op.kind is not OpKind.RESCALE:
            continue
        end = len(trace.ops)
        for j in range(index + 1, len(trace.ops)):
            if trace.ops[j].level >= trace.max_level:
                end = j
                break
        region = trace.ops[index + 1:end]
        if any(o.kind is OpKind.ADJUST for o in region):
            continue
        if any(
            not 0 <= o.level + 1 <= trace.max_level
            or targets[o.level + 1] != targets[o.level]
            for o in region
        ):
            continue
        ops = (
            trace.ops[:index]
            + _shift_ops(region, +1)
            + trace.ops[end:]
        )
        new = replace(trace, ops=ops)
        return new, op.count, f"elided rescale at op {index}"
    return trace, 0.0, ""


def _pass_elide_adjust(
    trace: HeTrace, result: VerifyResult
) -> tuple[HeTrace, float, str]:
    """Drop one adjust flagged ``trace-elidable-adjust`` (its source
    level saw no compute, so the value could have been produced at the
    destination directly)."""
    flagged = [f.line for f in result.waste if f.rule == "trace-elidable-adjust"]
    for index in flagged:
        if not 0 <= index < len(trace.ops):
            continue
        op = trace.ops[index]
        if op.kind is not OpKind.ADJUST:
            continue
        new = replace(trace, ops=trace.ops[:index] + trace.ops[index + 1:])
        return new, op.count, f"elided adjust at op {index}"
    return trace, 0.0, ""


def _pass_sink_rescale(
    trace: HeTrace, result: VerifyResult
) -> tuple[HeTrace, float, str]:
    """Sink parallel rescales past the tree-add that consumes them.

    ``RESCALE(l, c>1)`` immediately followed by ``HADD(l-1, c-1)`` is a
    reduction of ``c`` products: adding first at level ``l`` and
    rescaling the single sum needs one rescale instead of ``c``.
    """
    ops = list(trace.ops)
    rewrites = 0.0
    sites = 0
    i = 0
    while i + 1 < len(ops):
        a, b = ops[i], ops[i + 1]
        if (
            a.kind is OpKind.RESCALE
            and a.count > 1
            and b.kind is OpKind.HADD
            and b.level == a.level - 1
            and b.count == a.count - 1
        ):
            ops[i:i + 2] = [
                TraceOp(OpKind.HADD, a.level, a.count - 1),
                TraceOp(OpKind.RESCALE, a.level, 1.0),
            ]
            rewrites += a.count - 1
            sites += 1
        i += 1
    if not sites:
        return trace, 0.0, ""
    return (
        replace(trace, ops=ops),
        rewrites,
        f"sank {sites} rescale group(s) past their tree-add",
    )


def _used_levels(trace: HeTrace) -> set[int]:
    used: set[int] = set()
    for op in trace.ops:
        if op.count == 0:
            continue
        used.add(op.level)
        if op.kind is OpKind.RESCALE:
            used.add(op.level - 1)
        if op.kind is OpKind.ADJUST and op.dst_level is not None:
            used.add(op.dst_level)
    return used


def _pass_truncate_levels(
    trace: HeTrace, result: VerifyResult
) -> tuple[HeTrace, float, str]:
    """Drop chain levels no op ever touches.

    Workloads that adjust straight past the bottom of the chain (or
    never climb to its top outside a bootstrap) pay modulus for levels
    they never occupy.  Removing ``k`` bottom levels relabels every op
    down by ``k`` and drops those levels' scale targets, so
    ``Q_top = base + sum(T[1:])`` shrinks by the dropped targets;
    ``base_bits`` is unchanged (it is the residency requirement at
    whatever level is terminal).
    """
    used = _used_levels(trace)
    if not used:
        return trace, 0.0, ""
    bottom = 0
    while bottom not in used:
        bottom += 1
    top = max(used)
    if bottom == 0 and top == trace.max_level:
        return trace, 0.0, ""
    new = replace(
        trace,
        level_scale_bits=trace.level_scale_bits[bottom:top + 1],
        ops=_shift_ops(trace.ops, -bottom),
    )
    dropped = bottom + (trace.max_level - top)
    return (
        new,
        float(dropped),
        f"dropped {bottom} unused bottom / {trace.max_level - top} "
        "unused top level(s)",
    )


def _app_run_length(targets: Sequence[float]) -> int:
    run = 1
    while run < len(targets) and targets[run] == targets[0]:
        run += 1
    return run


def _pass_tighten_scales(
    trace: HeTrace, result: VerifyResult
) -> tuple[HeTrace, float, str]:
    """Lower the application scales into the measured noise margin.

    The bottom uniform-target run is the application region; reducing
    its scale by ``delta`` sheds ``delta`` bits per app level from ``Q``
    at the cost of ``~delta`` bits of precision.  The largest ``delta``
    (up to :data:`MAX_SCALE_DELTA_BITS`) that re-verifies clean with a
    noise margin still at or above :data:`MIN_NOISE_MARGIN_BITS` wins;
    if none does, the pass is a no-op.
    """
    targets = trace.level_scale_bits
    run = _app_run_length(targets)
    margin = result.min_noise_margin_bits
    if not math.isfinite(margin):
        return trace, 0.0, ""
    delta = min(MAX_SCALE_DELTA_BITS, float(int(margin - MIN_NOISE_MARGIN_BITS)))
    while delta > 0:
        tightened = tuple(
            t - delta if i < run else t for i, t in enumerate(targets)
        )
        candidate = replace(trace, level_scale_bits=tightened)
        check = verify_trace(candidate)
        if not check.findings and (
            check.min_noise_margin_bits >= MIN_NOISE_MARGIN_BITS
        ):
            return (
                candidate,
                delta * run,
                f"app scales -{delta:g} bits over {run} level(s), "
                f"margin {margin:.1f} -> {check.min_noise_margin_bits:.1f}",
            )
        delta -= 1
    return trace, 0.0, ""


def _pass_tighten_base(
    trace: HeTrace, result: VerifyResult
) -> tuple[HeTrace, float, str]:
    """Shrink ``base_bits`` into the verifier's measured slack.

    ``slack_bits`` already subtracts the overflow headroom, so the base
    can safely come down by the minimum slack less
    :data:`BASE_SAFETY_BITS`; re-verification (driver-side) then proves
    no product encroaches anywhere on the narrower chain.
    """
    slack = result.slack_bits
    if not slack:
        return trace, 0.0, ""
    delta = float(int(min(slack) - BASE_SAFETY_BITS))
    while delta > 0:
        candidate = replace(trace, base_bits=trace.base_bits - delta)
        check = verify_trace(candidate)
        if not check.findings:
            return (
                candidate,
                delta,
                f"base {trace.base_bits:g} -> {trace.base_bits - delta:g} bits",
            )
        delta -= 1
    return trace, 0.0, ""


#: The pipeline, in order.  (name, pass, run-to-fixpoint?)
_PIPELINE: tuple[tuple[str, Callable, bool], ...] = (
    ("elide-rescale", _pass_elide_rescale, True),
    ("elide-adjust", _pass_elide_adjust, True),
    ("sink-rescale", _pass_sink_rescale, False),
    ("truncate-levels", _pass_truncate_levels, False),
    ("tighten-scales", _pass_tighten_scales, False),
    ("tighten-base", _pass_tighten_base, False),
)


def compile_trace(
    trace: HeTrace,
    *,
    scheme: str = "bitpacker",
    word_bits: int = 28,
    ks_digits: int = 3,
    plan: bool = True,
) -> CompiledTrace:
    """Compile one schedule; see the module doc for the pipeline.

    Raises :class:`~repro.errors.ScheduleViolationError` if the *input*
    fails static verification (the compiler refuses rather than papering
    over a broken schedule) and :class:`~repro.errors.ParameterError`
    for unusable arguments.  With ``plan=True`` the compiled scale
    profile is re-planned into a concrete modulus chain for ``scheme``.
    """
    if scheme not in ("bitpacker", "rns-ckks"):
        raise ParameterError(f"unknown scheme {scheme!r}")
    before = verify_or_raise(trace, word_bits=word_bits)
    source_digest = content_digest(trace)

    current, result = trace, before
    passes: list[PassResult] = []
    ops_elided = 0.0
    for name, fn, fixpoint in _PIPELINE:
        rewrites = 0.0
        details: list[str] = []
        while True:
            candidate, n, detail = fn(current, result)
            if n == 0 or candidate is current:
                break
            check = verify_trace(candidate, word_bits=word_bits)
            # Certify the rewrite: any violation, or a margin now below
            # both the floor and what the input already had, reverts it.
            floor = min(MIN_NOISE_MARGIN_BITS, before.min_noise_margin_bits)
            if check.findings or check.min_noise_margin_bits < floor:
                break
            current, result = candidate, check
            rewrites += n
            if detail:
                details.append(detail)
            if not fixpoint:
                break
        if rewrites:
            if _obs.ACTIVE:
                _obs.count(f"compiler.pass.{name}.rewrites", rewrites)
            if name.startswith("elide") or name == "sink-rescale":
                ops_elided += rewrites
        passes.append(PassResult(name, rewrites, "; ".join(details)))

    after = verify_or_raise(current, word_bits=word_bits)
    chain = None
    if plan:
        from repro.schemes import plan_chain

        kwargs = {"snap_scales": True} if scheme == "rns-ckks" else {}
        chain = plan_chain(
            scheme,
            n=current.n,
            word_bits=word_bits,
            level_scale_bits=current.level_scale_bits,
            base_bits=current.base_bits,
            ks_digits=ks_digits,
            **kwargs,
        )
    if _obs.ACTIVE:
        _obs.count("compiler.compiled")
    return CompiledTrace(
        trace=current,
        scheme=scheme,
        word_bits=word_bits,
        source_digest=source_digest,
        digest=content_digest(current),
        passes=tuple(passes),
        levels_before=trace.max_level + 1,
        levels_after=current.max_level + 1,
        log2_q_before=before.log2_q[-1] if before.log2_q else math.nan,
        log2_q_after=after.log2_q[-1] if after.log2_q else math.nan,
        noise_margin_before=before.min_noise_margin_bits,
        noise_margin_after=after.min_noise_margin_bits,
        ops_elided=ops_elided,
        chain=chain,
    )


def compile_workloads(
    schemes: Sequence[str] = ("bitpacker", "rns-ckks"),
    word_bits: int = 28,
    *,
    plan: bool = False,
) -> list[CompiledTrace]:
    """Compile every bundled workload trace (the CI / CLI sweep)."""
    from repro.analysis.schedule import workload_traces

    out = []
    for scheme in schemes:
        for trace in workload_traces(schemes=(scheme,), word_bits=word_bits):
            out.append(
                compile_trace(
                    trace, scheme=scheme, word_bits=word_bits, plan=plan
                )
            )
    return out


def render_report(compiled: Sequence[CompiledTrace]) -> str:
    """Human-readable savings table for a batch of compilations."""
    header = (
        f"{'workload':34s} {'scheme':9s} {'levels':>13s} {'log2Q':>17s} "
        f"{'margin':>13s} {'elided':>7s}"
    )
    lines = [header, "-" * len(header)]
    for c in compiled:
        lines.append(
            f"{c.trace.name:34s} {c.scheme:9s} "
            f"{c.levels_before:5d} -> {c.levels_after:4d} "
            f"{c.log2_q_before:7.1f} -> {c.log2_q_after:7.1f} "
            f"{c.noise_margin_before:5.1f} -> {c.noise_margin_after:4.1f} "
            f"{c.ops_elided:7g}"
        )
    total_levels = sum(c.levels_saved for c in compiled)
    total_q = sum(c.log2_q_saved for c in compiled)
    lines.append(
        f"total: {total_levels} level(s) and {total_q:.1f} log2(Q) bits "
        f"saved across {len(compiled)} workload(s)"
    )
    return "\n".join(lines)
