"""Homomorphic-operation traces.

Workloads are recorded once as a stream of ``(op, level)`` events and
replayed against either the functional CKKS engine (small ``n``,
correctness and precision) or the accelerator/CPU cost models (``n =
2^16``, performance and energy) — the two uses the paper makes of each
benchmark.
"""

from repro.trace.program import (
    TRACE_SCHEMA_VERSION,
    HeTrace,
    OpKind,
    TraceBuilder,
    TraceOp,
    content_digest,
)

__all__ = [
    "TRACE_SCHEMA_VERSION",
    "HeTrace",
    "OpKind",
    "TraceOp",
    "TraceBuilder",
    "TraceExecutor",
    "content_digest",
    "execute_trace",
    "CompiledTrace",
    "compile_trace",
    "compile_workloads",
]

_COMPILER_NAMES = frozenset(
    {"CompiledTrace", "PassResult", "compile_trace", "compile_workloads",
     "render_report"}
)


def __getattr__(name: str):
    # The executor drags in the full CKKS stack (which itself imports
    # repro.analysis for the sanitizer), so it is resolved lazily to
    # keep ``repro.trace`` importable from anywhere in that stack.
    # Likewise the compiler, which sits on repro.analysis.absint.
    if name in ("TraceExecutor", "execute_trace"):
        from repro.trace import execute

        return getattr(execute, name)
    if name in _COMPILER_NAMES:
        from repro.trace import compiler

        return getattr(compiler, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
