"""Homomorphic-operation traces.

Workloads are recorded once as a stream of ``(op, level)`` events and
replayed against either the functional CKKS engine (small ``n``,
correctness and precision) or the accelerator/CPU cost models (``n =
2^16``, performance and energy) — the two uses the paper makes of each
benchmark.
"""

from repro.trace.program import HeTrace, OpKind, TraceBuilder, TraceOp

__all__ = ["HeTrace", "OpKind", "TraceOp", "TraceBuilder"]
