"""Homomorphic-operation traces.

Workloads are recorded once as a stream of ``(op, level)`` events and
replayed against either the functional CKKS engine (small ``n``,
correctness and precision) or the accelerator/CPU cost models (``n =
2^16``, performance and energy) — the two uses the paper makes of each
benchmark.
"""

from repro.trace.program import HeTrace, OpKind, TraceBuilder, TraceOp

__all__ = [
    "HeTrace",
    "OpKind",
    "TraceOp",
    "TraceBuilder",
    "TraceExecutor",
    "execute_trace",
]


def __getattr__(name: str):
    # The executor drags in the full CKKS stack (which itself imports
    # repro.analysis for the sanitizer), so it is resolved lazily to
    # keep ``repro.trace`` importable from anywhere in that stack.
    if name in ("TraceExecutor", "execute_trace"):
        from repro.trace import execute

        return getattr(execute, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
