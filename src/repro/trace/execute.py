"""Replay a trace against the functional CKKS engine, one op per entry.

The static verifier (:mod:`repro.analysis.absint`) predicts an interval
for every op's result scale and level.  :class:`TraceExecutor` produces
the matching ground truth: it executes each trace op once through the
real :class:`~repro.ckks.evaluator.Evaluator` and captures the result
via the sanitizer's op log (:func:`repro.analysis.sanitize.record_ops`),
so :func:`repro.analysis.absint.check_observations` can assert that
every concrete (level, scale) falls inside the abstract bounds — the
static and runtime layers checking each other.

Trace ops are *aggregates* (``count`` parallel instances of one shape),
and the abstract domain joins rather than composes them, so replay
mirrors that semantics: each op runs once on fresh canonical-scale
operands at its recorded level, with one twist — a multiply's result is
remembered per level and handed to the next RESCALE there, because the
rescale transfer consumes the un-rescaled product.  The executor
assumes a trace that verifies clean (run
:func:`~repro.analysis.absint.verify_or_raise` first); replaying a
corrupted schedule raises the library's usual errors instead.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.analysis import sanitize
from repro.errors import InvariantViolation
from repro.trace.program import HeTrace, OpKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.ckks.ciphertext import Ciphertext
    from repro.ckks.context import CkksContext

#: Deterministic payload; values well inside (-1, 1) so minimax-style
#: depth does not overflow the value domain.
_VALUES = (0.5, -0.25, 0.125, 0.0625)


class TraceExecutor:
    """Replays :class:`~repro.trace.program.HeTrace` ops on a context."""

    def __init__(self, ctx: "CkksContext"):
        self.ctx = ctx
        self._canon: dict[int, "Ciphertext"] = {}

    def _canonical(self, level: int) -> "Ciphertext":
        """A fresh ciphertext at ``level``'s canonical scale (cached)."""
        ct = self._canon.get(level)
        if ct is None:
            ct = self.ctx.encrypt(_VALUES, level=level)
            self._canon[level] = ct
        return ct

    def run(
        self, trace: HeTrace
    ) -> list[tuple[int, sanitize.OpObservation]]:
        """Execute ``trace`` and return ``(op index, observation)`` pairs.

        One observation per non-empty op, captured under
        :func:`~repro.analysis.sanitize.record_ops` — exactly the input
        :func:`~repro.analysis.absint.check_observations` expects.
        """
        ev = self.ctx.evaluator
        products: dict[int, "Ciphertext"] = {}
        observed: list[tuple[int, sanitize.OpObservation]] = []
        with sanitize.record_ops() as log:
            for index, op in enumerate(trace.ops):
                if op.count == 0:
                    continue
                level = op.level
                before = len(log)
                if op.kind is OpKind.HMUL:
                    canon = self._canonical(level)
                    products[level] = ev.multiply(canon, canon)
                elif op.kind is OpKind.PMUL:
                    products[level] = ev.mul_plain(
                        self._canonical(level), _VALUES
                    )
                elif op.kind is OpKind.HADD:
                    canon = self._canonical(level)
                    ev.add(canon, canon)
                elif op.kind is OpKind.PADD:
                    ev.add_plain(self._canonical(level), _VALUES)
                elif op.kind is OpKind.HROT:
                    ev.rotate(self._canonical(level), 1)
                elif op.kind is OpKind.RESCALE:
                    src = products.pop(level, None)
                    if src is None:
                        src = self._canonical(level)
                    ev.rescale(src)
                elif op.kind is OpKind.ADJUST:
                    ev.adjust(self._canonical(level), op.dst_level)
                if len(log) != before + 1:
                    raise InvariantViolation(
                        f"op {index} ({op.kind.value}) logged "
                        f"{len(log) - before} observations, expected 1"
                    )
                observed.append((index, log[-1]))
        return observed


def execute_trace(
    ctx: "CkksContext", trace: HeTrace
) -> list[tuple[int, sanitize.OpObservation]]:
    """Convenience wrapper: run ``trace`` on a fresh executor."""
    return TraceExecutor(ctx).run(trace)
