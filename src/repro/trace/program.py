"""Trace IR: the operation stream the performance models consume.

A trace is scheme-agnostic: it records *what* the program does (operation
kind, level, multiplicity) together with the program constraints of
Fig. 8 (per-level target scales, base modulus width).  Each scheme's
planner turns those constraints into a modulus chain; the simulator then
prices every trace op through that chain's per-level residue counts.
"""

from __future__ import annotations

import enum
import hashlib
import json
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ParameterError

#: Serialized-trace schema version.  Readers accept any version up to and
#: including this one (older encodings omitted the field entirely, which
#: decodes as version 1); a *newer* version is a clean
#: :class:`~repro.errors.ParameterError`, never a traceback.
TRACE_SCHEMA_VERSION = 1


class OpKind(enum.Enum):
    """Primitive homomorphic operations (paper Sec. 2.2)."""

    HMUL = "hmul"  # ciphertext x ciphertext (with relinearization)
    HROT = "hrot"  # homomorphic rotation (with keyswitch)
    HADD = "hadd"  # ciphertext + ciphertext
    PMUL = "pmul"  # ciphertext x plaintext
    PADD = "padd"  # ciphertext + plaintext
    RESCALE = "rescale"  # level L -> L-1
    ADJUST = "adjust"  # level L -> dst with scale correction


#: Kinds counted as level management in Fig. 12's breakdown.
LEVEL_MANAGEMENT_KINDS = frozenset({OpKind.RESCALE, OpKind.ADJUST})


@dataclass(frozen=True)
class TraceOp:
    """``count`` occurrences of one op at one level.

    ``scale_bits`` optionally records the log2 scale the program expects
    its operands to carry at this op; when present, the schedule linter
    (:mod:`repro.analysis.schedule`) cross-checks it against the level's
    canonical scale to catch add/mul scale mismatches statically.
    """

    kind: OpKind
    level: int
    count: float = 1.0
    dst_level: int | None = None  # ADJUST only
    scale_bits: float | None = None  # operand scale, if the program records it

    def __post_init__(self):
        if self.kind is OpKind.ADJUST and self.dst_level is None:
            raise ParameterError("ADJUST ops need a dst_level")
        if self.count < 0:
            raise ParameterError("op count must be non-negative")

    def to_dict(self) -> dict:
        return {
            "kind": self.kind.value,
            "level": self.level,
            "count": self.count,
            "dst_level": self.dst_level,
            "scale_bits": self.scale_bits,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TraceOp":
        return cls(
            kind=OpKind(data["kind"]),
            level=data["level"],
            count=data["count"],
            dst_level=data.get("dst_level"),
            scale_bits=data.get("scale_bits"),
        )


@dataclass
class HeTrace:
    """A complete program trace plus its chain-planning constraints."""

    name: str
    n: int
    base_bits: float
    level_scale_bits: tuple[float, ...]
    ops: list[TraceOp] = field(default_factory=list)

    @property
    def max_level(self) -> int:
        return len(self.level_scale_bits) - 1

    @property
    def total_ops(self) -> float:
        return sum(op.count for op in self.ops)

    def count_by_kind(self) -> dict[OpKind, float]:
        out: dict[OpKind, float] = {}
        for op in self.ops:
            out[op.kind] = out.get(op.kind, 0.0) + op.count
        return out

    def validate(self) -> None:
        for op in self.ops:
            if not 0 <= op.level <= self.max_level:
                raise ParameterError(
                    f"{self.name}: op at level {op.level} outside chain "
                    f"[0, {self.max_level}]"
                )
            if op.kind is OpKind.RESCALE and op.level == 0:
                raise ParameterError(f"{self.name}: rescale at level 0")

    def extended(self, ops: Iterable[TraceOp]) -> "HeTrace":
        return HeTrace(
            name=self.name,
            n=self.n,
            base_bits=self.base_bits,
            level_scale_bits=self.level_scale_bits,
            ops=self.ops + list(ops),
        )

    def to_dict(self) -> dict:
        """JSON-ready form for the experiment runner's disk cache."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "n": self.n,
            "base_bits": self.base_bits,
            "level_scale_bits": list(self.level_scale_bits),
            "ops": [op.to_dict() for op in self.ops],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HeTrace":
        if not isinstance(data, dict):
            raise ParameterError("trace must decode to a JSON object")
        schema = data.get("schema", 1)
        if not isinstance(schema, int) or schema < 1:
            raise ParameterError(f"trace schema version {schema!r} is not valid")
        if schema > TRACE_SCHEMA_VERSION:
            raise ParameterError(
                f"trace schema version {schema} is newer than this reader "
                f"(supports <= {TRACE_SCHEMA_VERSION}); upgrade bitpacker-repro"
            )
        try:
            return cls(
                name=data["name"],
                n=data["n"],
                base_bits=data["base_bits"],
                level_scale_bits=tuple(data["level_scale_bits"]),
                ops=[TraceOp.from_dict(op) for op in data["ops"]],
            )
        except (KeyError, TypeError) as exc:
            raise ParameterError(f"malformed trace encoding: {exc}") from exc

    def content_digest(self) -> str:
        """Canonical content hash (see :func:`content_digest`)."""
        return content_digest(self)


def content_digest(trace: HeTrace) -> str:
    """sha256 over a canonical JSON encoding of ``trace``.

    The canonical form sorts keys and drops the ``schema`` marker, so the
    digest is stable under op-metadata dict ordering and serialization
    version churn, yet changes whenever any op, scale target, or chain
    constraint changes — exactly the identity the serve admission memo
    and eval cache keys need.
    """
    payload = trace.to_dict()
    payload.pop("schema", None)
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode()).hexdigest()


class TraceBuilder:
    """Incrementally records a program's operations.

    Workload generators use this as a tiny embedded DSL::

        b = TraceBuilder("rnn", n=65536, base_bits=60, level_scale_bits=...)
        b.hmul(level); b.rescale(level); b.hrot(level - 1, count=128)
        trace = b.build()
    """

    def __init__(
        self,
        name: str,
        n: int,
        base_bits: float,
        level_scale_bits: Iterable[float],
    ):
        self.name = name
        self.n = n
        self.base_bits = base_bits
        self.level_scale_bits = tuple(float(b) for b in level_scale_bits)
        self._ops: list[TraceOp] = []

    # Recording helpers ----------------------------------------------------
    def record(self, kind: OpKind, level: int, count: float = 1.0,
               dst_level: int | None = None,
               scale_bits: float | None = None) -> None:
        if count:
            self._ops.append(TraceOp(kind, level, count, dst_level, scale_bits))

    def hmul(self, level: int, count: float = 1.0) -> None:
        self.record(OpKind.HMUL, level, count)

    def hrot(self, level: int, count: float = 1.0) -> None:
        self.record(OpKind.HROT, level, count)

    def hadd(self, level: int, count: float = 1.0) -> None:
        self.record(OpKind.HADD, level, count)

    def pmul(self, level: int, count: float = 1.0) -> None:
        self.record(OpKind.PMUL, level, count)

    def padd(self, level: int, count: float = 1.0) -> None:
        self.record(OpKind.PADD, level, count)

    def rescale(self, level: int, count: float = 1.0) -> None:
        self.record(OpKind.RESCALE, level, count)

    def adjust(self, level: int, dst_level: int, count: float = 1.0) -> None:
        self.record(OpKind.ADJUST, level, count, dst_level)

    def build(self) -> HeTrace:
        trace = HeTrace(
            name=self.name,
            n=self.n,
            base_bits=self.base_bits,
            level_scale_bits=self.level_scale_bits,
            ops=list(self._ops),
        )
        trace.validate()
        return trace
