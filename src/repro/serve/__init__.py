"""``repro.serve`` — the async multi-tenant encrypted-compute service.

The long-running composition of the repo's batch pieces (DESIGN.md
Sec. 13): per-tenant sessions over a shared key registry
(:mod:`repro.serve.keys`), admission through the static schedule
verifier, bounded per-shard queues with 429-style backpressure, a
batcher that coalesces compatible ciphertext ops into matrix-at-a-time
backend-registry calls (:mod:`repro.serve.batch`), and per-tenant
metrics via :mod:`repro.obs`.  :mod:`repro.serve.loadgen` ships the
seeded Zipf/bursty traffic model; ``bitpacker-serve``
(:mod:`repro.serve.cli`) boots the whole stack from the command line.
"""

from repro.serve.batch import (
    EXECUTABLE_KINDS,
    OpRequest,
    coalesce,
    execute_group,
    execute_serial,
)
from repro.serve.keys import KeyMaterial, KeyParams, KeyRegistry
from repro.serve.loadgen import (
    LoadReport,
    LoadSpec,
    build_schedule,
    run_load,
    run_scenario,
)
from repro.serve.service import (
    BitPackerServe,
    ServeResponse,
    TenantSession,
    verify_admitted_trace,
)

__all__ = [
    "EXECUTABLE_KINDS",
    "BitPackerServe",
    "KeyMaterial",
    "KeyParams",
    "KeyRegistry",
    "LoadReport",
    "LoadSpec",
    "OpRequest",
    "ServeResponse",
    "TenantSession",
    "build_schedule",
    "coalesce",
    "execute_group",
    "execute_serial",
    "run_load",
    "run_scenario",
    "verify_admitted_trace",
]
