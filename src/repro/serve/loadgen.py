"""Deterministic, seedable load generator for `bitpacker-serve`.

Simulates the traffic shape a popular encrypted-compute endpoint sees
(the ROADMAP's "millions of users" target scaled to a test harness):

- **Zipf tenant mix** — tenant popularity follows ``1 / rank^s``; a few
  hot tenants dominate, a long tail trickles (so key/batch reuse is
  realistic, not uniform).
- **Bursty arrivals** — requests arrive in bursts of ``burst`` with
  seeded exponential gaps between bursts, not a smooth open loop; a
  burst is submitted concurrently, which is exactly what exercises the
  batcher and, at high offered load, the backpressure path.

Everything is derived from ``spec.seed``: the schedule
(:func:`build_schedule`), the per-request operands
(:func:`operands_for`), and therefore the expected results.  Two runs
of the same spec submit byte-identical traffic, so the report can
*prove* zero corruption: every ``ok`` response is compared
byte-for-byte against :func:`repro.serve.batch.execute_serial` on the
same operands.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ParameterError
from repro.serve import batch as _batch
from repro.serve.service import DEFAULT_N, DEFAULT_WORD_BITS, BitPackerServe

#: (app, bootstrap) pairs cycled across tenants; mixing schedules gives
#: the batcher mixed-level traffic it must keep separate.
DEFAULT_WORKLOADS = (
    ("LogReg", "BS19"),
    ("RNN", "BS19"),
    ("LogReg", "BS26"),
    ("SqueezeNet", "BS19"),
)


@dataclass(frozen=True)
class LoadSpec:
    """One reproducible load scenario (the CLI's knobs)."""

    seed: int = 0xB17
    tenants: int = 6
    requests: int = 200
    zipf_s: float = 1.2
    burst: int = 8
    #: Mean seconds between bursts (0 = flood: every burst back-to-back).
    burst_gap_s: float = 0.0
    #: Per-request deadline passed to ``submit`` (``None`` = none).
    deadline_s: float | None = None
    n: int = DEFAULT_N
    word_bits: int = DEFAULT_WORD_BITS
    workloads: tuple[tuple[str, str], ...] = DEFAULT_WORKLOADS
    #: Run each tenant's schedule through the trace compiler at
    #: registration (fewer levels per session, smaller key material).
    compiled: bool = False

    def __post_init__(self):
        if self.tenants < 1:
            raise ParameterError(f"tenants must be >= 1, got {self.tenants}")
        if self.requests < 1:
            raise ParameterError(f"requests must be >= 1, got {self.requests}")
        if self.burst < 1:
            raise ParameterError(f"burst must be >= 1, got {self.burst}")
        if self.zipf_s <= 0:
            raise ParameterError(f"zipf_s must be > 0, got {self.zipf_s}")


@dataclass(frozen=True)
class Arrival:
    """One scheduled request: which tenant fires which op, when."""

    index: int
    burst: int
    gap_s: float  # pause before this arrival's burst (first in burst only)
    tenant: str
    op_index: int


def tenant_name(rank: int) -> str:
    return f"tenant-{rank:04d}"


def tenant_workload(spec: LoadSpec, rank: int) -> tuple[str, str]:
    return spec.workloads[rank % len(spec.workloads)]


def _zipf_weights(count: int, s: float) -> list[float]:
    weights = [1.0 / (rank + 1) ** s for rank in range(count)]
    total = sum(weights)
    return [w / total for w in weights]


def build_schedule(
    spec: LoadSpec, executable: dict[str, tuple[int, ...]]
) -> list[Arrival]:
    """The deterministic arrival schedule for ``spec``.

    ``executable`` maps tenant name -> the op indices its session may
    execute (from :attr:`TenantSession.executable`).  Same spec, same
    sessions => same schedule, element for element.
    """
    rng = random.Random(spec.seed)
    names = [tenant_name(rank) for rank in range(spec.tenants)]
    weights = _zipf_weights(spec.tenants, spec.zipf_s)
    arrivals: list[Arrival] = []
    for index in range(spec.requests):
        burst = index // spec.burst
        first_in_burst = index % spec.burst == 0
        gap = 0.0
        if first_in_burst and burst > 0 and spec.burst_gap_s > 0:
            gap = rng.expovariate(1.0 / spec.burst_gap_s)
        tenant = rng.choices(names, weights=weights)[0]
        ops = executable[tenant]
        arrivals.append(Arrival(
            index=index, burst=burst, gap_s=gap, tenant=tenant,
            op_index=ops[rng.randrange(len(ops))],
        ))
    return arrivals


def operands_for(
    spec: LoadSpec, arrival: Arrival, moduli: tuple[int, ...]
) -> tuple[np.ndarray, np.ndarray]:
    """Seeded residue stacks for one arrival (row ``i`` < ``moduli[i]``)."""
    rng = np.random.default_rng((spec.seed << 20) ^ arrival.index)
    a = np.stack(
        [rng.integers(0, q, spec.n, dtype=np.uint64) for q in moduli]
    )
    b = np.stack(
        [rng.integers(0, q, spec.n, dtype=np.uint64) for q in moduli]
    )
    return a, b


@dataclass
class LoadReport:
    """What one load run did, with the corruption audit built in."""

    spec: LoadSpec
    wall_s: float = 0.0
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0  # 503 circuit-breaker load shedding
    completed: int = 0
    failed: int = 0
    quarantined: int = 0  # poison requests isolated by split-and-retry
    corrupted: int = 0
    dropped: int = 0  # responses never received (must stay 0)
    latencies_s: list[float] = field(default_factory=list)
    batch_sizes: list[int] = field(default_factory=list)
    reject_codes: dict[int, int] = field(default_factory=dict)
    failure_codes: dict[int, int] = field(default_factory=dict)
    stats: dict = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_s if self.wall_s > 0 else 0.0

    def latency_percentile(self, pct: float) -> float:
        if not self.latencies_s:
            return 0.0
        return float(np.percentile(np.array(self.latencies_s), pct))

    def to_dict(self) -> dict:
        return {
            "seed": self.spec.seed,
            "tenants": self.spec.tenants,
            "requests": self.spec.requests,
            "zipf_s": self.spec.zipf_s,
            "burst": self.spec.burst,
            "burst_gap_s": self.spec.burst_gap_s,
            "n": self.spec.n,
            "word_bits": self.spec.word_bits,
            "deadline_s": self.spec.deadline_s,
            "wall_s": self.wall_s,
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "corrupted": self.corrupted,
            "dropped": self.dropped,
            "throughput_rps": self.throughput_rps,
            "p50_latency_ms": self.latency_percentile(50) * 1e3,
            "p99_latency_ms": self.latency_percentile(99) * 1e3,
            "max_latency_ms": (
                max(self.latencies_s) * 1e3 if self.latencies_s else 0.0
            ),
            "mean_batch_size": (
                sum(self.batch_sizes) / len(self.batch_sizes)
                if self.batch_sizes else 0.0
            ),
            "max_batch_size": max(self.batch_sizes, default=0),
            "reject_codes": {
                str(code): n for code, n in sorted(self.reject_codes.items())
            },
            "failure_codes": {
                str(code): n for code, n in sorted(self.failure_codes.items())
            },
            "service": self.stats,
        }


def register_tenants(service: BitPackerServe, spec: LoadSpec) -> None:
    """Create one session per simulated tenant (idempotent-free: call once)."""
    for rank in range(spec.tenants):
        app, bs = tenant_workload(spec, rank)
        service.register(
            tenant_name(rank), app=app, bs=bs,
            n=spec.n, word_bits=spec.word_bits, compiled=spec.compiled,
        )


async def run_load(
    service: BitPackerServe, spec: LoadSpec, *, verify: bool = True
) -> LoadReport:
    """Drive ``spec``'s schedule at the service and audit every response.

    The service must be started and its tenants registered
    (:func:`register_tenants`).  With ``verify`` on, each ``ok``
    response is recomputed serially from the seeded operands and
    compared byte-for-byte (``corrupted`` counts mismatches).
    """
    sessions = {name: service.sessions[name] for name in (
        tenant_name(rank) for rank in range(spec.tenants)
    )}
    executable = {name: s.executable for name, s in sessions.items()}
    schedule = build_schedule(spec, executable)
    report = LoadReport(spec=spec)

    async def fire(arrival: Arrival):
        session = sessions[arrival.tenant]
        trace_op = session.trace.ops[arrival.op_index]
        moduli = session.key.moduli_at(trace_op.level)
        a, b = operands_for(spec, arrival, moduli)
        response = await service.submit(
            arrival.tenant, arrival.op_index, a, b,
            deadline_s=spec.deadline_s,
        )
        return arrival, a, b, response

    started = time.perf_counter()
    pending: list[asyncio.Task] = []
    for arrival in schedule:
        if arrival.gap_s > 0:
            await asyncio.sleep(arrival.gap_s)
        pending.append(asyncio.create_task(fire(arrival)))
    outcomes = await asyncio.gather(*pending, return_exceptions=True)
    report.wall_s = time.perf_counter() - started

    for outcome in outcomes:
        report.submitted += 1
        if isinstance(outcome, BaseException):  # lost response
            report.dropped += 1
            continue
        arrival, a, b, response = outcome
        if response.status == "rejected":
            report.rejected += 1
            report.reject_codes[response.code] = (
                report.reject_codes.get(response.code, 0) + 1
            )
            continue
        if response.status == "shed":
            report.shed += 1
            continue
        report.admitted += 1
        if response.status == "quarantined":
            report.quarantined += 1
            continue
        if response.status == "error":
            report.failed += 1
            report.failure_codes[response.code] = (
                report.failure_codes.get(response.code, 0) + 1
            )
            continue
        report.completed += 1
        report.latencies_s.append(response.latency_s)
        report.batch_sizes.append(response.batch_size)
        if verify:
            session = sessions[arrival.tenant]
            trace_op = session.trace.ops[arrival.op_index]
            expected = _batch.execute_serial(_batch.OpRequest(
                tenant=arrival.tenant, key=session.key,
                op=_batch.EXECUTABLE_KINDS[trace_op.kind],
                level=trace_op.level, a=a, b=b,
            ))
            if (
                response.result is None
                or response.result.shape != expected.shape
                or not bool(np.array_equal(response.result, expected))
            ):
                report.corrupted += 1
    report.stats = service.stats()
    return report


async def run_scenario(spec: LoadSpec, *, verify: bool = True,
                       **service_kwargs) -> LoadReport:
    """Boot a fresh service, register tenants, run the load, drain."""
    async with BitPackerServe(**service_kwargs) as service:
        register_tenants(service, spec)
        report = await run_load(service, spec, verify=verify)
        service.check_books()
    return report
