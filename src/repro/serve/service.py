"""`bitpacker-serve`: the async multi-tenant encrypted-compute service.

Composes the repo's batch pieces into a long-running system (ROADMAP's
"single biggest step toward the north star"):

admission -> verify gate -> per-shard queue -> batcher -> kernel call
   |              |                |               |          |
 404/400/422   ScheduleViolation  429 past     coalesce     backend
 on bad input  at the front door  high water   compatible   registry
                                               ops

- **Sessions** bind a tenant to a *verified* schedule and to shared
  :class:`~repro.serve.keys.KeyMaterial`.  Registration runs every
  trace through the PR-7 :func:`~repro.analysis.absint.verify_or_raise`
  gate (content-keyed, single-flight memo), so a malformed schedule is
  rejected before it can poison a batch.
- **Sharding** routes a session by its key fingerprint: one key's
  traffic serializes on one worker, which keeps its tables hot and
  makes per-tenant ordering trivial.
- **Backpressure**: shard queues are bounded; admission past the high
  water mark returns a 429-class rejection immediately instead of
  queuing unboundedly.  Rejected requests are never enqueued, so the
  books balance: ``submitted == admitted + rejected`` and, after a
  drain, ``admitted == completed + failed``.
- **Batching**: each worker drains whatever is queued (up to
  ``max_batch``), coalesces compatible ops
  (:mod:`repro.serve.batch`), and dispatches matrix-at-a-time through
  the backend registry.  Results are byte-identical to serial
  execution — batching is a latency/throughput decision, never a
  numerical one.
- **Observability**: per-tenant counters and latency/batch-size
  histograms ride :mod:`repro.obs` when profiling is enabled; the
  service also keeps always-on local books (:meth:`BitPackerServe.stats`)
  the smoke job asserts against.

The service is single-event-loop: workers are asyncio tasks and the
kernel calls run inline (they are short at service ring degrees and
release little; a GPU/JIT backend slots in behind the same registry
dispatch).  The concurrency-unsafe module globals this layer leans on
(obs span chain and metrics, runner event log, the eval verify memo)
were made task/thread-safe in the same PR (DESIGN.md Sec. 13).
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.absint import verify_or_raise
from repro.errors import InvariantViolation, ParameterError
from repro.obs import core as _obs
from repro.serve import batch as _batch
from repro.serve.keys import KeyMaterial, KeyParams, KeyRegistry
from repro.trace.program import HeTrace

#: Default serve ring degree: big enough to exercise the batched
#: kernels, small enough that a load test runs in seconds.
DEFAULT_N = 64
DEFAULT_WORD_BITS = 28

#: Bound on the admitted-schedule memo (content digests are tiny; this
#: only guards a pathological churn of unique schedules).
_GATE_MEMO_LIMIT = 4096

_GATE_LOCK = threading.Lock()
_GATE_MEMO: set[str] = set()
_GATE_INFLIGHT: dict[str, threading.Event] = {}


def _trace_digest(trace: HeTrace) -> str:
    blob = json.dumps(trace.to_dict(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()


def verify_admitted_trace(trace: HeTrace) -> None:
    """Front-door schedule gate, memoized by trace *content*.

    Unlike the eval gate (which memoizes by object identity because its
    lru_cache interns trace objects), serve sessions build fresh trace
    objects per registration, so the memo keys on a digest of the
    serialized trace.  Single-flight with tolerate-duplicate fallback,
    same discipline as :func:`repro.eval.common._verify_schedule`.
    """
    digest = _trace_digest(trace)
    while True:
        with _GATE_LOCK:
            if digest in _GATE_MEMO:
                return
            pending = _GATE_INFLIGHT.get(digest)
            if pending is None:
                _GATE_INFLIGHT[digest] = threading.Event()
                break
        pending.wait()
        with _GATE_LOCK:
            if digest in _GATE_MEMO:
                return
    try:
        verify_or_raise(trace)
        with _GATE_LOCK:
            if len(_GATE_MEMO) >= _GATE_MEMO_LIMIT:
                _GATE_MEMO.clear()
            _GATE_MEMO.add(digest)
    finally:
        with _GATE_LOCK:
            done = _GATE_INFLIGHT.pop(digest, None)
        if done is not None:
            done.set()


@dataclass
class TenantSession:
    """One registered tenant: verified schedule + shared key material."""

    tenant: str
    trace: HeTrace
    key: KeyMaterial
    shard: int
    #: Trace op indices a request may execute (payload-bearing kinds).
    executable: tuple[int, ...]
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0

    def op_for(self, op_index: int):
        return self.trace.ops[op_index]


@dataclass
class ServeResponse:
    """What a submitter gets back.  ``ok`` iff the op executed."""

    status: str  # "ok" | "rejected" | "error"
    code: int  # HTTP-style: 200, 400, 404, 422, 429, 500
    tenant: str
    op_index: int | None = None
    result: np.ndarray | None = field(default=None, repr=False)
    batch_size: int = 0
    latency_s: float = 0.0
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class BitPackerServe:
    """The service.  Use as an async context manager::

        async with BitPackerServe(shards=2) as serve:
            serve.register("tenant-a", app="LogReg")
            response = await serve.submit("tenant-a", op_index, a, b)
    """

    def __init__(
        self,
        shards: int = 2,
        queue_depth: int = 64,
        high_water: int | None = None,
        max_batch: int = 16,
        registry: KeyRegistry | None = None,
    ):
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if queue_depth < 1:
            raise ParameterError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {max_batch}")
        self.shards = shards
        self.queue_depth = queue_depth
        #: Admission rejects once a shard queue holds this many waiting
        #: requests (<= queue_depth so enqueue never blocks the loop).
        self.high_water = queue_depth if high_water is None else high_water
        if not 1 <= self.high_water <= queue_depth:
            raise ParameterError(
                f"high_water must be in [1, queue_depth={queue_depth}], "
                f"got {self.high_water}"
            )
        self.max_batch = max_batch
        self.registry = registry if registry is not None else KeyRegistry()
        self.sessions: dict[str, TenantSession] = {}
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._seq = 0
        self._running = False
        # Always-on books (obs counters only record while profiling).
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_seen = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            return
        self._queues = [
            asyncio.Queue(maxsize=self.queue_depth) for _ in range(self.shards)
        ]
        self._workers = [
            asyncio.create_task(self._worker(shard), name=f"serve-shard-{shard}")
            for shard in range(self.shards)
        ]
        self._running = True

    async def stop(self) -> None:
        """Drain every queue, then stop the workers."""
        if not self._running:
            return
        for queue in self._queues:
            await queue.join()
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        self._workers = []
        self._queues = []
        self._running = False

    async def __aenter__(self) -> "BitPackerServe":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop()
        return False

    # ------------------------------------------------------------------
    # Registration (the front door's verify gate)
    # ------------------------------------------------------------------
    def register(
        self,
        tenant: str,
        *,
        trace: HeTrace | None = None,
        app: str | None = None,
        bs: str = "BS19",
        scheme: str = "bitpacker",
        n: int = DEFAULT_N,
        word_bits: int = DEFAULT_WORD_BITS,
        ks_digits: int = 3,
    ) -> TenantSession:
        """Create a session: verify the schedule, bind key material.

        ``trace`` may be given directly, or built from a bundled
        workload (``app``/``bs``/``scheme``).  Raises
        :class:`~repro.errors.ScheduleViolationError` when the schedule
        fails the static gate — the request never reaches a queue.
        """
        if tenant in self.sessions:
            raise ParameterError(f"tenant {tenant!r} is already registered")
        if trace is None:
            if app is None:
                raise ParameterError("register needs a trace or an app name")
            from repro.workloads.apps import BENCHMARKS
            from repro.workloads.bootstrap_model import SCHEDULES

            if app not in BENCHMARKS:
                raise ParameterError(
                    f"unknown app {app!r}; known: {', '.join(sorted(BENCHMARKS))}"
                )
            if bs not in SCHEDULES:
                raise ParameterError(
                    f"unknown bootstrap schedule {bs!r}; known: "
                    f"{', '.join(sorted(SCHEDULES))}"
                )
            trace = BENCHMARKS[app](
                SCHEDULES[bs], n=n, scheme=scheme, word_bits=word_bits,
                ks_digits=ks_digits,
            )
        verify_admitted_trace(trace)
        key = self.registry.get(
            KeyParams(n=n, word_bits=word_bits, levels=trace.max_level)
        )
        executable = tuple(
            index for index, op in enumerate(trace.ops)
            if op.kind in _batch.EXECUTABLE_KINDS
        )
        session = TenantSession(
            tenant=tenant,
            trace=trace,
            key=key,
            shard=int(key.fingerprint, 16) % self.shards,
            executable=executable,
        )
        self.sessions[tenant] = session
        if _obs.ACTIVE:
            _obs.count("serve.sessions")
        return session

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _reject(
        self, session: TenantSession | None, tenant: str, code: int,
        reason: str, op_index: int | None = None,
    ) -> ServeResponse:
        self.rejected += 1
        if session is not None:
            session.rejected += 1
        if _obs.ACTIVE:
            _obs.count("serve.rejected")
            _obs.count(f"serve.rejected.{code}")
            _obs.count(f"serve.tenant.{tenant}.rejected")
        return ServeResponse(
            status="rejected", code=code, tenant=tenant,
            op_index=op_index, reason=reason,
        )

    async def submit(
        self, tenant: str, op_index: int, a: np.ndarray, b: np.ndarray
    ) -> ServeResponse:
        """Admit one ciphertext op and await its (possibly batched) result.

        Admission failures resolve immediately with ``rejected``
        responses and HTTP-style codes; admitted requests resolve when
        their batch executes.
        """
        if not self._running:
            raise ParameterError("service is not running (use `async with`)")
        self.submitted += 1
        if _obs.ACTIVE:
            _obs.count("serve.submitted")
        session = self.sessions.get(tenant)
        if session is None:
            return self._reject(None, tenant, 404, "unknown tenant")
        session.submitted += 1
        if not 0 <= op_index < len(session.trace.ops):
            return self._reject(
                session, tenant, 400,
                f"op_index {op_index} outside trace "
                f"[0, {len(session.trace.ops)})", op_index,
            )
        trace_op = session.op_for(op_index)
        op = _batch.EXECUTABLE_KINDS.get(trace_op.kind)
        if op is None:
            return self._reject(
                session, tenant, 400,
                f"op kind {trace_op.kind.value!r} carries no request "
                "payload (schedule-only)", op_index,
            )
        request = _batch.OpRequest(
            tenant=tenant, key=session.key, op=op, level=trace_op.level,
            a=a, b=b, seq=self._seq,
        )
        try:
            _batch.validate_operands(request)
        except ParameterError as exc:
            return self._reject(session, tenant, 422, str(exc), op_index)
        queue = self._queues[session.shard]
        if queue.qsize() >= self.high_water:
            return self._reject(
                session, tenant, 429,
                f"shard {session.shard} past high water "
                f"({self.high_water} queued)", op_index,
            )
        self._seq += 1
        self.admitted += 1
        session.admitted += 1
        if _obs.ACTIVE:
            _obs.count("serve.admitted")
            _obs.count(f"serve.tenant.{tenant}.admitted")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        request.context = (future, op_index, time.perf_counter())
        queue.put_nowait(request)
        return await future

    # ------------------------------------------------------------------
    # Shard workers
    # ------------------------------------------------------------------
    async def _worker(self, shard: int) -> None:
        queue = self._queues[shard]
        while True:
            request = await queue.get()
            run = [request]
            while len(run) < self.max_batch:
                try:
                    run.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                for group in _batch.coalesce(run):
                    self._execute(shard, group)
            finally:
                for _ in run:
                    queue.task_done()

    def _execute(self, shard: int, group: list[_batch.OpRequest]) -> None:
        """Run one coalesced group and resolve its futures."""
        self.batches += 1
        self.batched_requests += len(group)
        self.max_batch_seen = max(self.max_batch_seen, len(group))
        if _obs.ACTIVE:
            _obs.count("serve.batches")
            _obs.observe("serve.batch_size", len(group))
        try:
            if _obs.ACTIVE:
                with _obs.span(
                    "serve/batch", shard=shard, op=group[0].op,
                    level=group[0].level, size=len(group),
                ):
                    results = _batch.execute_group(group)
            else:
                results = _batch.execute_group(group)
        except Exception as exc:  # kernel failure: fail the whole group
            done = time.perf_counter()
            for request in group:
                future, op_index, t0 = request.context
                self.failed += 1
                self.sessions[request.tenant].failed += 1
                if _obs.ACTIVE:
                    _obs.count("serve.failed")
                    _obs.count(f"serve.tenant.{request.tenant}.failed")
                if not future.done():
                    future.set_result(ServeResponse(
                        status="error", code=500, tenant=request.tenant,
                        op_index=op_index, batch_size=len(group),
                        latency_s=done - t0,
                        reason=f"{type(exc).__name__}: {exc}",
                    ))
            return
        done = time.perf_counter()
        for request, result in zip(group, results):
            future, op_index, t0 = request.context
            latency = done - t0
            self.completed += 1
            session = self.sessions[request.tenant]
            session.completed += 1
            if _obs.ACTIVE:
                _obs.count("serve.completed")
                _obs.count(f"serve.tenant.{request.tenant}.completed")
                _obs.observe("serve.latency_seconds", latency)
                _obs.observe(f"serve.tenant.{request.tenant}.latency_seconds",
                             latency)
            if not future.done():
                future.set_result(ServeResponse(
                    status="ok", code=200, tenant=request.tenant,
                    op_index=op_index, result=result,
                    batch_size=len(group), latency_s=latency,
                ))

    # ------------------------------------------------------------------
    # Books
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The service's always-on accounting, consistency-checkable:
        ``submitted == admitted + rejected`` always, and after a drain
        ``admitted == completed + failed``."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch_size": (
                self.batched_requests / self.batches if self.batches else 0.0
            ),
            "keys_built": self.registry.built,
            "keys_reused": self.registry.reused,
            "tenants": {
                name: {
                    "submitted": s.submitted,
                    "admitted": s.admitted,
                    "rejected": s.rejected,
                    "completed": s.completed,
                    "failed": s.failed,
                    "shard": s.shard,
                    "key": s.key.fingerprint,
                }
                for name, s in sorted(self.sessions.items())
            },
        }

    def check_books(self) -> None:
        """Raise if the admission/completion ledgers do not balance."""
        if self.submitted != self.admitted + self.rejected:
            raise InvariantViolation(  # pragma: no cover - ledger bug
                f"serve books broken: submitted={self.submitted} != "
                f"admitted={self.admitted} + rejected={self.rejected}"
            )
        if self.admitted != self.completed + self.failed + sum(
            queue.qsize() for queue in self._queues
        ):
            raise InvariantViolation(  # pragma: no cover - ledger bug
                f"serve books broken: admitted={self.admitted} != "
                f"completed={self.completed} + failed={self.failed} + queued"
            )


def _reset_gate_for_tests() -> None:
    """Drop the admitted-schedule memo (test isolation)."""
    with _GATE_LOCK:
        _GATE_MEMO.clear()
        _GATE_INFLIGHT.clear()
