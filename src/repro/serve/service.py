"""`bitpacker-serve`: the async multi-tenant encrypted-compute service.

Composes the repo's batch pieces into a long-running system (ROADMAP's
"single biggest step toward the north star"):

admission -> verify gate -> per-shard queue -> batcher -> kernel call
   |              |                |               |          |
 404/400/422   ScheduleViolation  429 past     coalesce     backend
 on bad input  at the front door  high water   compatible   registry
               503 breaker shed   / fair cap   ops          + retries

- **Sessions** bind a tenant to a *verified* schedule and to shared
  :class:`~repro.serve.keys.KeyMaterial`.  Registration runs every
  trace through the PR-7 :func:`~repro.analysis.absint.verify_or_raise`
  gate (content-keyed, single-flight memo), so a malformed schedule is
  rejected before it can poison a batch.
- **Sharding** routes a session by its key fingerprint: one key's
  traffic serializes on one worker, which keeps its tables hot and
  makes per-tenant ordering trivial.
- **Backpressure**: shard queues are bounded; admission past the high
  water mark returns a 429-class rejection immediately instead of
  queuing unboundedly.  A per-shard circuit breaker
  (:mod:`repro.serve.resilience`) sheds load with 503-class responses
  while a shard's kernel keeps failing, and an optional per-tenant
  inflight cap keeps one noisy tenant from starving its shard.
- **Batching**: each worker drains whatever is queued (up to
  ``max_batch``), coalesces compatible ops
  (:mod:`repro.serve.batch`), and dispatches matrix-at-a-time through
  the backend registry.  Results are byte-identical to serial
  execution — batching is a latency/throughput decision, never a
  numerical one.
- **Resilience** (DESIGN.md Sec. 14): requests carry deadlines from
  ``submit()`` into every dispatch and retry decision; a failed group
  is *split-and-retried* (bisection isolates a poison request in
  O(log B) dispatches and quarantines it instead of 500ing its batch
  peers); singleton dispatches retry with deterministic-jitter
  backoff; ``stop(drain=True)`` finishes queued work under a drain
  deadline and resolves — never hangs — anything it cannot finish.
- **Observability**: per-tenant counters and latency/batch-size
  histograms ride :mod:`repro.obs` when profiling is enabled; the
  service also keeps always-on local books (:meth:`BitPackerServe.stats`)
  the smoke job asserts against, and a :meth:`BitPackerServe.health`
  readiness view exposing breaker states and quarantine counts.

The service is single-event-loop: workers are asyncio tasks and the
kernel calls run inline (they are short at service ring degrees and
release little; a GPU/JIT backend slots in behind the same registry
dispatch).  Injected faults (:mod:`repro.eval.faults` ``serve.*``
sites) are *decided* by the injector but *applied* here with
``await asyncio.sleep``, so a simulated straggler stalls one dispatch,
not the loop.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.analysis.absint import verify_or_raise
from repro.errors import InvariantViolation, ParameterError
from repro.eval import faults as _faults
from repro.obs import core as _obs
from repro.serve import batch as _batch
from repro.serve import resilience as _res
from repro.serve.keys import KeyMaterial, KeyParams, KeyRegistry
from repro.trace.program import HeTrace, content_digest

#: Default serve ring degree: big enough to exercise the batched
#: kernels, small enough that a load test runs in seconds.
DEFAULT_N = 64
DEFAULT_WORD_BITS = 28

#: Bound on the admitted-schedule memo: above this the least recently
#: used digests are evicted (re-verification is cheap and correct, so
#: eviction only costs latency on a cold schedule, never correctness).
_GATE_MEMO_LIMIT = 4096

_GATE_LOCK = threading.Lock()
#: LRU of admitted-schedule digests (OrderedDict as an LRU: hits move
#: to the end, eviction pops from the front).
_GATE_MEMO: OrderedDict[str, None] = OrderedDict()
_GATE_INFLIGHT: dict[str, threading.Event] = {}


def _trace_digest(trace: HeTrace) -> str:
    # Shared canonical content digest (sorted keys, schema marker
    # stripped): stable under op-metadata dict ordering and serializer
    # version churn, different the moment a compiler pass rewrites the
    # trace — so a compiled schedule never inherits its source's verdict.
    return content_digest(trace)


def invalidate_admitted(digest: str) -> bool:
    """Drop one digest's memoized admission verdict (if present).

    Called on recompilation: the source trace's verdict must not stand
    in for the rewritten schedule, which re-verifies under its own
    digest.  Returns whether an entry was evicted.
    """
    with _GATE_LOCK:
        present = digest in _GATE_MEMO
        if present:
            del _GATE_MEMO[digest]
        return present


def gate_memo_size() -> int:
    """Entries in the admitted-schedule memo (exported via ``stats()``)."""
    with _GATE_LOCK:
        return len(_GATE_MEMO)


def verify_admitted_trace(trace: HeTrace) -> None:
    """Front-door schedule gate, memoized by trace *content*.

    Unlike the eval gate (which memoizes by object identity because its
    lru_cache interns trace objects), serve sessions build fresh trace
    objects per registration, so the memo keys on a digest of the
    serialized trace.  Single-flight with tolerate-duplicate fallback,
    same discipline as :func:`repro.eval.common._verify_schedule`.  The
    memo is a bounded LRU: a pathological churn of unique schedules
    evicts the coldest digests instead of growing without bound.
    """
    digest = _trace_digest(trace)
    while True:
        with _GATE_LOCK:
            if digest in _GATE_MEMO:
                _GATE_MEMO.move_to_end(digest)
                return
            pending = _GATE_INFLIGHT.get(digest)
            if pending is None:
                _GATE_INFLIGHT[digest] = threading.Event()
                break
        pending.wait()
        with _GATE_LOCK:
            if digest in _GATE_MEMO:
                _GATE_MEMO.move_to_end(digest)
                return
    try:
        verify_or_raise(trace)
        with _GATE_LOCK:
            while len(_GATE_MEMO) >= _GATE_MEMO_LIMIT:
                _GATE_MEMO.popitem(last=False)
            _GATE_MEMO[digest] = None
    finally:
        with _GATE_LOCK:
            done = _GATE_INFLIGHT.pop(digest, None)
        if done is not None:
            done.set()


@dataclass
class TenantSession:
    """One registered tenant: verified schedule + shared key material."""

    tenant: str
    trace: HeTrace
    key: KeyMaterial
    shard: int
    #: Trace op indices a request may execute (payload-bearing kinds).
    executable: tuple[int, ...]
    submitted: int = 0
    admitted: int = 0
    rejected: int = 0
    shed: int = 0
    #: Content digest of the pre-compilation trace when the session was
    #: registered with ``compiled=True`` (``None`` otherwise).
    compiled_from: str | None = None
    #: Chain levels the compiler removed for this session's schedule.
    levels_saved: int = 0
    completed: int = 0
    failed: int = 0
    quarantined: int = 0
    #: Admitted but not yet settled (the fairness-cap denominator).
    inflight: int = 0

    def op_for(self, op_index: int):
        return self.trace.ops[op_index]


@dataclass
class ServeResponse:
    """What a submitter gets back.  ``ok`` iff the op executed.

    ``status`` values: ``ok`` (200), ``rejected`` (400/404/422/429
    admission refusals), ``shed`` (503, circuit breaker open),
    ``quarantined`` (422, this request deterministically fails the
    kernel and was isolated by split-and-retry), ``error`` (500 kernel
    failure after retries, 504 deadline exceeded, 503 service stopped
    before execution).
    """

    status: str  # "ok" | "rejected" | "shed" | "quarantined" | "error"
    code: int  # HTTP-style: 200, 400, 404, 422, 429, 500, 503, 504
    tenant: str
    op_index: int | None = None
    result: np.ndarray | None = field(default=None, repr=False)
    batch_size: int = 0
    latency_s: float = 0.0
    reason: str = ""

    @property
    def ok(self) -> bool:
        return self.status == "ok"


class BitPackerServe:
    """The service.  Use as an async context manager::

        async with BitPackerServe(shards=2) as serve:
            serve.register("tenant-a", app="LogReg")
            response = await serve.submit("tenant-a", op_index, a, b)
    """

    def __init__(
        self,
        shards: int = 2,
        queue_depth: int = 64,
        high_water: int | None = None,
        max_batch: int = 16,
        registry: KeyRegistry | None = None,
        request_timeout_s: float | None = None,
        retry: _res.RetryPolicy | None = None,
        breaker: _res.BreakerPolicy | None = None,
        tenant_inflight_cap: int | None = None,
    ):
        if shards < 1:
            raise ParameterError(f"shards must be >= 1, got {shards}")
        if queue_depth < 1:
            raise ParameterError(f"queue_depth must be >= 1, got {queue_depth}")
        if max_batch < 1:
            raise ParameterError(f"max_batch must be >= 1, got {max_batch}")
        if request_timeout_s is not None and request_timeout_s <= 0:
            raise ParameterError(
                f"request_timeout_s must be > 0, got {request_timeout_s}"
            )
        if tenant_inflight_cap is not None and tenant_inflight_cap < 1:
            raise ParameterError(
                f"tenant_inflight_cap must be >= 1, got {tenant_inflight_cap}"
            )
        self.shards = shards
        self.queue_depth = queue_depth
        #: Admission rejects once a shard queue holds this many waiting
        #: requests (<= queue_depth so enqueue never blocks the loop).
        self.high_water = queue_depth if high_water is None else high_water
        if not 1 <= self.high_water <= queue_depth:
            raise ParameterError(
                f"high_water must be in [1, queue_depth={queue_depth}], "
                f"got {self.high_water}"
            )
        self.max_batch = max_batch
        self.registry = registry if registry is not None else KeyRegistry()
        #: Default per-request deadline (seconds; ``None`` = none).
        self.request_timeout_s = request_timeout_s
        self.retry = retry if retry is not None else _res.RetryPolicy()
        self.breaker_policy = (
            breaker if breaker is not None else _res.BreakerPolicy()
        )
        self.tenant_inflight_cap = tenant_inflight_cap
        self.sessions: dict[str, TenantSession] = {}
        self._queues: list[asyncio.Queue] = []
        self._workers: list[asyncio.Task] = []
        self._breakers = [
            _res.CircuitBreaker(self.breaker_policy) for _ in range(shards)
        ]
        self._seq = 0
        self._running = False
        # Always-on books (obs counters only record while profiling).
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.completed = 0
        self.failed = 0
        self.quarantined = 0
        #: Failure breakdown (both are subsets of ``failed``).
        self.expired = 0  # 504: deadline passed before/while executing
        self.cancelled = 0  # 503: service stopped before execution
        self.retried = 0  # re-dispatches (split halves + singleton retries)
        self.splits = 0  # failed groups bisected to isolate a poison
        self.batches = 0
        self.batched_requests = 0
        self.max_batch_seen = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._running:
            return
        self._queues = [
            asyncio.Queue(maxsize=self.queue_depth) for _ in range(self.shards)
        ]
        self._workers = [
            asyncio.create_task(self._worker(shard), name=f"serve-shard-{shard}")
            for shard in range(self.shards)
        ]
        self._running = True

    async def stop(
        self, drain: bool = True, drain_timeout_s: float | None = None
    ) -> bool:
        """Stop the service; returns ``True`` iff every queue drained.

        ``drain=True`` (the default) finishes all queued work first,
        bounded by ``drain_timeout_s`` (``None`` = wait forever).
        ``drain=False`` — or a drain deadline expiring — cancels the
        workers and *settles* everything still pending with 503-class
        ``error`` responses: a stopped service never leaves a submitter
        awaiting a future that will not resolve, and the books still
        balance (the cancellations count as ``failed``/``cancelled``).
        """
        if not self._running:
            return True
        self._running = False  # new submits now refuse; queued work settles
        drained = True
        if drain and self._queues:
            join = asyncio.gather(*(queue.join() for queue in self._queues))
            try:
                await asyncio.wait_for(join, drain_timeout_s)
            except asyncio.TimeoutError:
                drained = False
        for worker in self._workers:
            worker.cancel()
        await asyncio.gather(*self._workers, return_exceptions=True)
        # Whatever is still queued was never dispatched: settle it.
        for queue in self._queues:
            while True:
                try:
                    request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                self._settle_cancelled(request)
                queue.task_done()
        self._workers = []
        self._queues = []
        return drained

    async def __aenter__(self) -> "BitPackerServe":
        await self.start()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> bool:
        await self.stop(drain=True)
        return False

    # ------------------------------------------------------------------
    # Registration (the front door's verify gate)
    # ------------------------------------------------------------------
    def register(
        self,
        tenant: str,
        *,
        trace: HeTrace | None = None,
        app: str | None = None,
        bs: str = "BS19",
        scheme: str = "bitpacker",
        n: int = DEFAULT_N,
        word_bits: int = DEFAULT_WORD_BITS,
        ks_digits: int = 3,
        compiled: bool = False,
    ) -> TenantSession:
        """Create a session: verify the schedule, bind key material.

        ``trace`` may be given directly, or built from a bundled
        workload (``app``/``bs``/``scheme``).  Raises
        :class:`~repro.errors.ScheduleViolationError` when the schedule
        fails the static gate — the request never reaches a queue.

        ``compiled=True`` runs the schedule through
        :func:`repro.trace.compiler.compile_trace` first: the session
        serves the optimized trace (fewer levels, smaller keys), the
        source digest's memoized admission verdict is invalidated, and
        the compiled trace re-verifies under its own digest.
        """
        if tenant in self.sessions:
            raise ParameterError(f"tenant {tenant!r} is already registered")
        if trace is None:
            if app is None:
                raise ParameterError("register needs a trace or an app name")
            from repro.workloads.apps import BENCHMARKS
            from repro.workloads.bootstrap_model import SCHEDULES

            if app not in BENCHMARKS:
                raise ParameterError(
                    f"unknown app {app!r}; known: {', '.join(sorted(BENCHMARKS))}"
                )
            if bs not in SCHEDULES:
                raise ParameterError(
                    f"unknown bootstrap schedule {bs!r}; known: "
                    f"{', '.join(sorted(SCHEDULES))}"
                )
            trace = BENCHMARKS[app](
                SCHEDULES[bs], n=n, scheme=scheme, word_bits=word_bits,
                ks_digits=ks_digits,
            )
        compiled_from: str | None = None
        levels_saved = 0
        if compiled:
            from repro.trace.compiler import compile_trace

            compiled_from = content_digest(trace)
            result = compile_trace(
                trace, scheme=scheme, word_bits=word_bits,
                ks_digits=ks_digits, plan=False,
            )
            invalidate_admitted(compiled_from)
            trace = result.trace
            levels_saved = result.levels_saved
            if _obs.ACTIVE:
                _obs.count("serve.sessions.compiled")
        verify_admitted_trace(trace)
        key = self.registry.get(
            KeyParams(n=n, word_bits=word_bits, levels=trace.max_level)
        )
        executable = tuple(
            index for index, op in enumerate(trace.ops)
            if op.kind in _batch.EXECUTABLE_KINDS
        )
        session = TenantSession(
            tenant=tenant,
            trace=trace,
            key=key,
            shard=int(key.fingerprint, 16) % self.shards,
            executable=executable,
            compiled_from=compiled_from,
            levels_saved=levels_saved,
        )
        self.sessions[tenant] = session
        if _obs.ACTIVE:
            _obs.count("serve.sessions")
        return session

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _reject(
        self, session: TenantSession | None, tenant: str, code: int,
        reason: str, op_index: int | None = None,
    ) -> ServeResponse:
        self.rejected += 1
        if session is not None:
            session.rejected += 1
        if _obs.ACTIVE:
            _obs.count("serve.rejected")
            _obs.count(f"serve.rejected.{code}")
            _obs.count(f"serve.tenant.{tenant}.rejected")
        return ServeResponse(
            status="rejected", code=code, tenant=tenant,
            op_index=op_index, reason=reason,
        )

    def _shed(
        self, session: TenantSession, code: int, reason: str,
        op_index: int | None = None,
    ) -> ServeResponse:
        self.shed += 1
        session.shed += 1
        if _obs.ACTIVE:
            _obs.count("serve.shed")
            _obs.count(f"serve.tenant.{session.tenant}.shed")
        return ServeResponse(
            status="shed", code=code, tenant=session.tenant,
            op_index=op_index, reason=reason,
        )

    async def submit(
        self, tenant: str, op_index: int, a: np.ndarray, b: np.ndarray,
        *, deadline_s: float | None = None,
    ) -> ServeResponse:
        """Admit one ciphertext op and await its (possibly batched) result.

        Admission failures resolve immediately with ``rejected`` (or,
        breaker open, ``shed``) responses and HTTP-style codes;
        admitted requests resolve when their batch executes, retries
        exhaust, their deadline passes, or the service stops.
        ``deadline_s`` overrides the service's ``request_timeout_s``
        for this request (relative seconds from now).
        """
        if not self._running:
            raise ParameterError("service is not running (use `async with`)")
        self.submitted += 1
        if _obs.ACTIVE:
            _obs.count("serve.submitted")
        session = self.sessions.get(tenant)
        if session is None:
            return self._reject(None, tenant, 404, "unknown tenant")
        session.submitted += 1
        if not 0 <= op_index < len(session.trace.ops):
            return self._reject(
                session, tenant, 400,
                f"op_index {op_index} outside trace "
                f"[0, {len(session.trace.ops)})", op_index,
            )
        trace_op = session.op_for(op_index)
        op = _batch.EXECUTABLE_KINDS.get(trace_op.kind)
        if op is None:
            return self._reject(
                session, tenant, 400,
                f"op kind {trace_op.kind.value!r} carries no request "
                "payload (schedule-only)", op_index,
            )
        request = _batch.OpRequest(
            tenant=tenant, key=session.key, op=op, level=trace_op.level,
            a=a, b=b, seq=self._seq,
        )
        try:
            _batch.validate_operands(request)
        except ParameterError as exc:
            return self._reject(session, tenant, 422, str(exc), op_index)
        breaker = self._breakers[session.shard]
        if not breaker.allow():
            return self._shed(
                session, 503,
                f"shard {session.shard} circuit breaker {breaker.state}",
                op_index,
            )
        if (
            self.tenant_inflight_cap is not None
            and session.inflight >= self.tenant_inflight_cap
        ):
            return self._reject(
                session, tenant, 429,
                f"tenant inflight cap reached "
                f"({session.inflight}/{self.tenant_inflight_cap})", op_index,
            )
        queue = self._queues[session.shard]
        if queue.qsize() >= self.high_water:
            return self._reject(
                session, tenant, 429,
                f"shard {session.shard} past high water "
                f"({self.high_water} queued)", op_index,
            )
        if deadline_s is None:
            deadline_s = self.request_timeout_s
        if deadline_s is not None:
            request.deadline = time.monotonic() + deadline_s
        if _faults.ACTIVE:
            request.poisoned = _faults.serve_request_poisoned()
        self._seq += 1
        self.admitted += 1
        session.admitted += 1
        session.inflight += 1
        if _obs.ACTIVE:
            _obs.count("serve.admitted")
            _obs.count(f"serve.tenant.{tenant}.admitted")
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        request.context = (future, op_index, time.perf_counter())
        queue.put_nowait(request)
        return await future

    # ------------------------------------------------------------------
    # Shard workers
    # ------------------------------------------------------------------
    async def _worker(self, shard: int) -> None:
        queue = self._queues[shard]
        while True:
            request = await queue.get()
            run = [request]
            while len(run) < self.max_batch:
                try:
                    run.append(queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            try:
                if _faults.ACTIVE:
                    stall = _faults.serve_queue_stall()
                    if stall > 0:
                        await asyncio.sleep(stall)
                for group in _batch.coalesce(run):
                    await self._run_group(shard, group)
            except asyncio.CancelledError:
                # Stop mid-flight: settle what this worker was holding
                # so no submitter is left awaiting a dead future.
                for pending in run:
                    self._settle_cancelled(pending)
                raise
            finally:
                for _ in run:
                    queue.task_done()

    async def _dispatch(
        self, shard: int, group: list[_batch.OpRequest]
    ) -> list[np.ndarray]:
        """One kernel dispatch attempt for a coalesced group."""
        self.batches += 1
        self.batched_requests += len(group)
        self.max_batch_seen = max(self.max_batch_seen, len(group))
        if _obs.ACTIVE:
            _obs.count("serve.batches")
            _obs.observe("serve.batch_size", len(group))
        if _faults.ACTIVE:
            fault = _faults.serve_kernel_fault()
            if fault is not None:
                mode, delay = fault
                if mode == "raise":
                    raise _faults.FaultInjected(
                        f"injected serve.kernel raise (shard {shard})"
                    )
                # hang / slow: a straggler dispatch, not a dead one.
                await asyncio.sleep(delay)
            poisoned = [r.seq for r in group if r.poisoned]
            if poisoned:
                raise _faults.PoisonedRequest(
                    f"injected poison request(s) seq={poisoned} "
                    f"(shard {shard})"
                )
        if _obs.ACTIVE:
            with _obs.span(
                "serve/batch", shard=shard, op=group[0].op,
                level=group[0].level, size=len(group),
            ):
                return _batch.execute_group(group)
        return _batch.execute_group(group)

    async def _run_group(
        self, shard: int, group: list[_batch.OpRequest], attempt: int = 1
    ) -> None:
        """Run one coalesced group with deadline/retry/split handling.

        ``attempt`` counts dispatches of *this exact group*: splitting
        a failed multi-request group hands each half a fresh budget
        (the bisection is bounded by ``log2(max_batch)`` on its own),
        while a failing singleton retries up to ``retry.retries`` times
        with deterministic-jitter backoff before being quarantined.
        """
        now = time.monotonic()
        live = []
        for request in group:
            if request.deadline is not None and now >= request.deadline:
                self._settle_expired(request, len(group))
            else:
                live.append(request)
        if not live:
            return
        breaker = self._breakers[shard]
        try:
            results = await self._dispatch(shard, live)
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            breaker.record_failure()
            if _obs.ACTIVE:
                _obs.count("serve.dispatch_failures")
            if len(live) > 1:
                # Split-and-retry: bisect to isolate the failing member
                # so its peers are not failed by association.
                self.splits += 1
                self.retried += 2
                if _obs.ACTIVE:
                    _obs.count("serve.splits")
                    _obs.count("serve.retried", 2)
                mid = len(live) // 2
                await self._run_group(shard, live[:mid])
                await self._run_group(shard, live[mid:])
                return
            request = live[0]
            if attempt <= self.retry.retries:
                delay = self.retry.delay_for(request.seq, attempt)
                if _res.remaining(request.deadline) > delay:
                    if delay > 0:
                        await asyncio.sleep(delay)
                    self.retried += 1
                    if _obs.ACTIVE:
                        _obs.count("serve.retried")
                    await self._run_group(shard, [request], attempt + 1)
                    return
                # The retry would land past the deadline: expire now
                # instead of burning a sleep the submitter cannot use.
                self._settle_expired(request, 1)
                return
            self._settle_quarantined(request, exc, attempt)
            return
        breaker.record_success()
        for request, result in zip(live, results):
            self._settle_ok(request, result, len(live))

    # ------------------------------------------------------------------
    # Settlement (the single choke point for admitted-request books)
    # ------------------------------------------------------------------
    def _settle(
        self, request: _batch.OpRequest, status: str, code: int, *,
        result: np.ndarray | None = None, batch_size: int = 0,
        reason: str = "",
    ) -> bool:
        """Resolve an admitted request exactly once; returns ``False``
        if it was already settled (books untouched)."""
        future, op_index, t0 = request.context
        if future.done():
            return False
        latency = time.perf_counter() - t0
        session = self.sessions[request.tenant]
        session.inflight -= 1
        if status == "ok":
            self.completed += 1
            session.completed += 1
        elif status == "quarantined":
            self.quarantined += 1
            session.quarantined += 1
        else:
            self.failed += 1
            session.failed += 1
        if _obs.ACTIVE:
            label = {"ok": "completed", "error": "failed"}.get(status, status)
            _obs.count(f"serve.{label}")
            _obs.count(f"serve.tenant.{request.tenant}.{label}")
            if status == "ok":
                _obs.observe("serve.latency_seconds", latency)
                _obs.observe(
                    f"serve.tenant.{request.tenant}.latency_seconds", latency
                )
        future.set_result(ServeResponse(
            status=status, code=code, tenant=request.tenant,
            op_index=op_index, result=result, batch_size=batch_size,
            latency_s=latency, reason=reason,
        ))
        return True

    def _settle_ok(
        self, request: _batch.OpRequest, result: np.ndarray, batch_size: int
    ) -> None:
        self._settle(
            request, "ok", 200, result=result, batch_size=batch_size
        )

    def _settle_expired(
        self, request: _batch.OpRequest, batch_size: int
    ) -> None:
        if self._settle(
            request, "error", 504, batch_size=batch_size,
            reason="deadline exceeded before execution completed",
        ):
            self.expired += 1
            if _obs.ACTIVE:
                _obs.count("serve.expired")

    def _settle_cancelled(self, request: _batch.OpRequest) -> None:
        if self._settle(
            request, "error", 503,
            reason="service stopped before execution",
        ):
            self.cancelled += 1
            if _obs.ACTIVE:
                _obs.count("serve.cancelled")

    def _settle_quarantined(
        self, request: _batch.OpRequest, exc: Exception, attempts: int
    ) -> None:
        self._settle(
            request, "quarantined", 422, batch_size=1,
            reason=(
                f"request deterministically fails the kernel "
                f"({attempts} attempt(s)): {type(exc).__name__}: {exc}"
            ),
        )

    # ------------------------------------------------------------------
    # Books
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """The service's always-on accounting, consistency-checkable:
        ``submitted == admitted + rejected + shed`` always, and after a
        drain ``admitted == completed + failed + quarantined``."""
        return {
            "submitted": self.submitted,
            "admitted": self.admitted,
            "rejected": self.rejected,
            "shed": self.shed,
            "completed": self.completed,
            "failed": self.failed,
            "quarantined": self.quarantined,
            "expired": self.expired,
            "cancelled": self.cancelled,
            "retried": self.retried,
            "splits": self.splits,
            "batches": self.batches,
            "batched_requests": self.batched_requests,
            "max_batch_seen": self.max_batch_seen,
            "mean_batch_size": (
                self.batched_requests / self.batches if self.batches else 0.0
            ),
            "keys_built": self.registry.built,
            "keys_reused": self.registry.reused,
            "gate_memo_size": gate_memo_size(),
            "breakers": [b.snapshot() for b in self._breakers],
            "tenants": {
                name: {
                    "submitted": s.submitted,
                    "admitted": s.admitted,
                    "rejected": s.rejected,
                    "shed": s.shed,
                    "completed": s.completed,
                    "failed": s.failed,
                    "quarantined": s.quarantined,
                    "inflight": s.inflight,
                    "shard": s.shard,
                    "key": s.key.fingerprint,
                }
                for name, s in sorted(self.sessions.items())
            },
        }

    def health(self) -> dict:
        """Readiness view: breaker states, queue depths, books summary.

        ``ready`` means the service is running and at least one shard's
        breaker is accepting traffic — a load balancer's probe target.
        """
        breakers = [b.snapshot() for b in self._breakers]
        return {
            "running": self._running,
            "ready": self._running and any(
                b["state"] != _res.OPEN for b in breakers
            ),
            "shards": [
                {
                    "shard": index,
                    "queued": (
                        self._queues[index].qsize() if self._queues else 0
                    ),
                    **snap,
                }
                for index, snap in enumerate(breakers)
            ],
            "sessions": len(self.sessions),
            "gate_memo_size": gate_memo_size(),
            "quarantined": self.quarantined,
            "retried": self.retried,
            "shed": self.shed,
        }

    def check_books(self) -> None:
        """Raise if the admission/settlement ledgers do not balance."""
        if self.submitted != self.admitted + self.rejected + self.shed:
            raise InvariantViolation(  # pragma: no cover - ledger bug
                f"serve books broken: submitted={self.submitted} != "
                f"admitted={self.admitted} + rejected={self.rejected} + "
                f"shed={self.shed}"
            )
        queued = sum(queue.qsize() for queue in self._queues)
        settled = self.completed + self.failed + self.quarantined
        if self.admitted != settled + queued:
            raise InvariantViolation(  # pragma: no cover - ledger bug
                f"serve books broken: admitted={self.admitted} != "
                f"completed={self.completed} + failed={self.failed} + "
                f"quarantined={self.quarantined} + queued={queued}"
            )
        if self.expired + self.cancelled > self.failed:
            raise InvariantViolation(  # pragma: no cover - ledger bug
                f"serve books broken: expired={self.expired} + "
                f"cancelled={self.cancelled} exceeds failed={self.failed}"
            )


def _reset_gate_for_tests() -> None:
    """Drop the admitted-schedule memo (test isolation)."""
    with _GATE_LOCK:
        _GATE_MEMO.clear()
        _GATE_INFLIGHT.clear()
