"""Per-tenant key material and the shared key registry.

A serve tenant's "key material" is everything an executor needs that is
derived from the tenant's parameterization rather than from any single
request: the NTT-friendly modulus chain primes, the per-level modulus
columns the batched kernels broadcast against, and the width ``kind``
the backend registry dispatches on.  Deriving it is pure and
deterministic, so two tenants registered with the same ``(n, word_bits,
levels)`` share one :class:`KeyMaterial` object — the ARK-style reuse
idiom (PAPERS.md): key-derived tables are built once per *key*, not
once per request or per tenant.

Sharing is what makes batching possible at all: the batcher may only
stack requests whose residue rows reduce against the *same* modulus
column (DESIGN.md Sec. 13), and the registry gives it a cheap identity
to group by (:attr:`KeyMaterial.fingerprint`).  The same fingerprint
also drives worker-pool sharding, so one key's traffic lands on one
worker and its tables stay hot there.

The registry is thread-safe: the serve admission path runs on the
event loop, but registration may be driven from test threads and the
benchmarks' warmup code concurrently.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.errors import ParameterError
from repro.nt.primes import ntt_friendly_primes_below
from repro.obs import core as _obs

#: Width routing for the backend registry's pointwise kernels: moduli
#: below 2^31 take the ``narrow`` fast paths, anything up to 2^61 the
#: ``wide`` ones (mirrors :mod:`repro.backends`).
NARROW_MAX_BITS = 30
MAX_WORD_BITS = 61


@dataclass(frozen=True)
class KeyParams:
    """The key-defining parameterization of a tenant session.

    ``levels`` is the chain's top level; a ciphertext at level ``l``
    carries ``l + 1`` residue rows (one prime dropped per rescale).
    """

    n: int
    word_bits: int
    levels: int

    def __post_init__(self):
        if self.n < 4 or self.n & (self.n - 1):
            raise ParameterError(
                f"ring degree must be a power of two >= 4, got {self.n}"
            )
        if not 4 <= self.word_bits <= MAX_WORD_BITS:
            raise ParameterError(
                f"word_bits must be in [4, {MAX_WORD_BITS}], got {self.word_bits}"
            )
        if self.levels < 0:
            raise ParameterError(f"levels must be >= 0, got {self.levels}")

    @property
    def kind(self) -> str:
        """Backend width kind for this key's moduli."""
        return "narrow" if self.word_bits <= NARROW_MAX_BITS else "wide"


class KeyMaterial:
    """Derived, immutable per-key state shared by every session on it."""

    def __init__(self, params: KeyParams):
        self.params = params
        gen = ntt_friendly_primes_below(1 << params.word_bits, params.n)
        primes = []
        try:
            for _ in range(params.levels + 1):
                primes.append(next(gen))
        except StopIteration:
            raise ParameterError(
                f"not enough NTT-friendly primes below 2^{params.word_bits} "
                f"for n={params.n} to build {params.levels + 1} level(s)"
            ) from None
        self.primes: tuple[int, ...] = tuple(primes)
        self.kind = params.kind
        blob = json.dumps(
            {"n": params.n, "word_bits": params.word_bits, "primes": primes},
            sort_keys=True, separators=(",", ":"),
        )
        #: Stable content identity: the batch key and shard key.
        self.fingerprint = hashlib.sha256(blob.encode()).hexdigest()[:16]

    def moduli_at(self, level: int) -> tuple[int, ...]:
        """The residue moduli of a ciphertext at ``level`` (base first)."""
        if not 0 <= level <= self.params.levels:
            raise ParameterError(
                f"level {level} outside chain [0, {self.params.levels}]"
            )
        return self.primes[: level + 1]

    @lru_cache(maxsize=None)  # noqa: B019 — immutable self, bounded by levels
    def q_col(self, level: int) -> np.ndarray:
        """``(level + 1, 1)`` uint64 modulus column for broadcasting."""
        return np.array(self.moduli_at(level), dtype=np.uint64).reshape(-1, 1)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        p = self.params
        return (
            f"KeyMaterial(n={p.n}, word_bits={p.word_bits}, "
            f"levels={p.levels}, fp={self.fingerprint})"
        )


class KeyRegistry:
    """Thread-safe interning table: :class:`KeyParams` -> :class:`KeyMaterial`.

    ``get`` returns the one shared object per parameterization, building
    it on first use.  Build/reuse counts feed the ``serve.keys.*``
    counters so a profile shows how much key material batching recovered.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._materials: dict[KeyParams, KeyMaterial] = {}
        self.built = 0
        self.reused = 0

    def get(self, params: KeyParams) -> KeyMaterial:
        with self._lock:
            material = self._materials.get(params)
            if material is not None:
                self.reused += 1
                if _obs.ACTIVE:
                    _obs.count("serve.keys.reused")
                return material
        # Derivation happens outside the lock (prime search can take a
        # moment for wide words); a racing duplicate build is tolerated —
        # derivation is deterministic, the first store wins.
        material = KeyMaterial(params)
        with self._lock:
            winner = self._materials.setdefault(params, material)
            if winner is material:
                self.built += 1
                if _obs.ACTIVE:
                    _obs.count("serve.keys.built")
            else:
                self.reused += 1
                if _obs.ACTIVE:
                    _obs.count("serve.keys.reused")
        return winner

    def __len__(self) -> int:
        with self._lock:
            return len(self._materials)
