"""``bitpacker-serve``: boot the service and drive the seeded load.

The smoke-and-demo entry point (also reachable as ``bitpacker-repro
serve ...``): builds a :class:`~repro.serve.loadgen.LoadSpec` from the
flags, runs one full scenario in-process — boot, register tenants,
Zipf/bursty load, drain — audits every response byte-for-byte against
serial execution, prints the report, and exits non-zero if anything
was dropped, corrupted, or failed, or if the service's books do not
balance.  ``--json`` writes the full machine-readable report (the CI
smoke job asserts on it).

Examples::

    bitpacker-serve
    bitpacker-serve --tenants 12 --requests 800 --burst 16 --seed 7
    bitpacker-serve --high-water 8 --queue-depth 8   # force backpressure
    bitpacker-serve --profile --json results/serve_smoke.json
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.serve.loadgen import LoadSpec, run_scenario
from repro.serve.service import DEFAULT_N, DEFAULT_WORD_BITS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bitpacker-serve",
        description=(
            "async multi-tenant encrypted-compute service: boot, drive "
            "the seeded load generator, audit every response"
        ),
    )
    load = parser.add_argument_group("load")
    load.add_argument("--seed", type=int, default=0xB17,
                      help="load-generator seed (default: %(default)s)")
    load.add_argument("--tenants", type=int, default=6,
                      help="simulated tenants (default: %(default)s)")
    load.add_argument("--requests", type=int, default=200,
                      help="total requests (default: %(default)s)")
    load.add_argument("--zipf-s", type=float, default=1.2,
                      help="tenant popularity skew (default: %(default)s)")
    load.add_argument("--burst", type=int, default=8,
                      help="requests per arrival burst (default: %(default)s)")
    load.add_argument("--burst-gap", type=float, default=0.0, metavar="S",
                      help="mean seconds between bursts (default: flood)")
    load.add_argument("--n", type=int, default=DEFAULT_N,
                      help="service ring degree (default: %(default)s)")
    load.add_argument("--word", type=int, default=DEFAULT_WORD_BITS,
                      help="modulus word bits (default: %(default)s)")
    svc = parser.add_argument_group("service")
    svc.add_argument("--shards", type=int, default=2,
                     help="worker shards (default: %(default)s)")
    svc.add_argument("--queue-depth", type=int, default=64,
                     help="bounded queue size per shard (default: %(default)s)")
    svc.add_argument("--high-water", type=int, default=None,
                     help="admission rejects past this queue depth "
                          "(default: queue depth)")
    svc.add_argument("--max-batch", type=int, default=16,
                     help="max requests coalesced per kernel call "
                          "(default: %(default)s)")
    svc.add_argument("--backend", default=None, metavar="NAME",
                     help="kernel backend (numpy, numba, auto; default: "
                          "$BITPACKER_BACKEND or auto)")
    out = parser.add_argument_group("output")
    out.add_argument("--no-verify", action="store_true",
                     help="skip the byte-for-byte response audit")
    out.add_argument("--profile", action="store_true",
                     help="record repro.obs counters/histograms into the "
                          "report")
    out.add_argument("--json", default=None, metavar="PATH",
                     help="write the machine-readable report to PATH")
    out.add_argument("--quiet", action="store_true",
                     help="suppress the rendered report (exit code only)")
    return parser


def render_report(doc: dict) -> str:
    lines = [
        "bitpacker-serve load report",
        f"  seed {doc['seed']}  tenants {doc['tenants']}  "
        f"requests {doc['requests']}  burst {doc['burst']} "
        f"(gap {doc['burst_gap_s']:g}s)  zipf_s {doc['zipf_s']:g}",
        f"  submitted {doc['submitted']}  admitted {doc['admitted']}  "
        f"rejected {doc['rejected']}  completed {doc['completed']}  "
        f"failed {doc['failed']}",
        f"  dropped {doc['dropped']}  corrupted {doc['corrupted']}",
        f"  wall {doc['wall_s']:.3f}s  "
        f"throughput {doc['throughput_rps']:.0f} req/s",
        f"  latency p50 {doc['p50_latency_ms']:.2f}ms  "
        f"p99 {doc['p99_latency_ms']:.2f}ms  "
        f"max {doc['max_latency_ms']:.2f}ms",
        f"  batches: mean size {doc['mean_batch_size']:.2f}, "
        f"max {doc['max_batch_size']}",
    ]
    service = doc.get("service", {})
    if service:
        lines.append(
            f"  keys: {service.get('keys_built', 0)} built, "
            f"{service.get('keys_reused', 0)} reused; "
            f"kernel batches {service.get('batches', 0)}"
        )
    if doc["reject_codes"]:
        codes = ", ".join(
            f"{n}x {code}" for code, n in sorted(doc["reject_codes"].items())
        )
        lines.append(f"  rejections by code: {codes}")
    return "\n".join(lines)


def _run(args) -> int:
    spec = LoadSpec(
        seed=args.seed,
        tenants=args.tenants,
        requests=args.requests,
        zipf_s=args.zipf_s,
        burst=args.burst,
        burst_gap_s=args.burst_gap,
        n=args.n,
        word_bits=args.word,
    )
    profiling = args.profile
    if profiling:
        from repro import obs

        obs.enable()
        obs.reset()
    try:
        report = asyncio.run(run_scenario(
            spec,
            verify=not args.no_verify,
            shards=args.shards,
            queue_depth=args.queue_depth,
            high_water=args.high_water,
            max_batch=args.max_batch,
        ))
    finally:
        if profiling:
            from repro import obs

            obs.disable()
    doc = report.to_dict()
    if profiling:
        from repro import obs

        doc["obs"] = {
            "counters": obs.counters(),
            "histograms": obs.histograms(),
        }
        obs.reset()
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"[serve] report -> {out}", file=sys.stderr)
    if not args.quiet:
        print(render_report(doc))
    problems = []
    if report.dropped:
        problems.append(f"{report.dropped} dropped response(s)")
    if report.corrupted:
        problems.append(f"{report.corrupted} corrupted response(s)")
    if report.failed:
        problems.append(f"{report.failed} failed request(s)")
    if report.submitted != report.admitted + report.rejected + report.dropped:
        problems.append("request books do not balance")
    if problems:
        print(f"[serve] FAILED: {'; '.join(problems)}", file=sys.stderr)
        return 1
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.backend is None:
        try:
            return _run(args)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    import repro.backends as kernel_backends
    from repro.errors import ParameterError

    backend = args.backend.strip().lower()
    if backend != "auto":
        try:
            kernel_backends.get_backend(backend)
        except ParameterError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    try:
        with kernel_backends.use(backend):
            return _run(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
