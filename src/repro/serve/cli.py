"""``bitpacker-serve``: boot the service and drive the seeded load.

The smoke-and-demo entry point (also reachable as ``bitpacker-repro
serve ...``): builds a :class:`~repro.serve.loadgen.LoadSpec` from the
flags, runs one full scenario in-process — boot, register tenants,
Zipf/bursty load, drain — audits every response byte-for-byte against
serial execution, prints the report, and exits non-zero if anything
was dropped, corrupted, or failed, or if the service's books do not
balance.  ``--json`` writes the full machine-readable report with a
per-tenant breakdown (the CI smoke and chaos jobs assert on it).

Exit codes: 0 clean, 1 dropped/corrupted/failed responses or
unbalanced books, 2 bad flags/spec, 130 on SIGINT (after a graceful
drain — the service context manager finishes queued work on the way
out).  Quarantined requests do *not* fail the run: isolating a poison
request instead of 500ing its batch is the service working as
designed.

Examples::

    bitpacker-serve
    bitpacker-serve --tenants 12 --requests 800 --burst 16 --seed 7
    bitpacker-serve --high-water 8 --queue-depth 8   # force backpressure
    bitpacker-serve --profile --json results/serve_smoke.json
    bitpacker-serve --faults 'serve.kernel:raise@0;serve.request:poison@3'
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import sys
from pathlib import Path
from typing import Sequence

from repro.errors import ReproError
from repro.serve.loadgen import LoadSpec, run_scenario
from repro.serve.resilience import BreakerPolicy, RetryPolicy
from repro.serve.service import DEFAULT_N, DEFAULT_WORD_BITS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="bitpacker-serve",
        description=(
            "async multi-tenant encrypted-compute service: boot, drive "
            "the seeded load generator, audit every response"
        ),
    )
    load = parser.add_argument_group("load")
    load.add_argument("--seed", type=int, default=0xB17,
                      help="load-generator seed (default: %(default)s)")
    load.add_argument("--tenants", type=int, default=6,
                      help="simulated tenants (default: %(default)s)")
    load.add_argument("--requests", type=int, default=200,
                      help="total requests (default: %(default)s)")
    load.add_argument("--zipf-s", type=float, default=1.2,
                      help="tenant popularity skew (default: %(default)s)")
    load.add_argument("--burst", type=int, default=8,
                      help="requests per arrival burst (default: %(default)s)")
    load.add_argument("--burst-gap", type=float, default=0.0, metavar="S",
                      help="mean seconds between bursts (default: flood)")
    load.add_argument("--n", type=int, default=DEFAULT_N,
                      help="service ring degree (default: %(default)s)")
    load.add_argument("--word", type=int, default=DEFAULT_WORD_BITS,
                      help="modulus word bits (default: %(default)s)")
    load.add_argument("--compiled", action="store_true",
                      help="compile each tenant's schedule at registration "
                           "(trace compiler: fewer levels, smaller keys)")
    svc = parser.add_argument_group("service")
    svc.add_argument("--shards", type=int, default=2,
                     help="worker shards (default: %(default)s)")
    svc.add_argument("--queue-depth", type=int, default=64,
                     help="bounded queue size per shard (default: %(default)s)")
    svc.add_argument("--high-water", type=int, default=None,
                     help="admission rejects past this queue depth "
                          "(default: queue depth)")
    svc.add_argument("--max-batch", type=int, default=16,
                     help="max requests coalesced per kernel call "
                          "(default: %(default)s)")
    svc.add_argument("--backend", default=None, metavar="NAME",
                     help="kernel backend (numpy, numba, auto; default: "
                          "$BITPACKER_BACKEND or auto)")
    res = parser.add_argument_group("resilience")
    res.add_argument("--request-timeout", type=float, default=None,
                     metavar="S",
                     help="per-request deadline in seconds (default: none)")
    res.add_argument("--retries", type=int, default=None, metavar="N",
                     help="singleton dispatch retries before quarantine "
                          "(default: policy default)")
    res.add_argument("--retry-backoff", type=float, default=None, metavar="S",
                     help="retry backoff base seconds (deterministic "
                          "jitter; default: policy default)")
    res.add_argument("--breaker-threshold", type=int, default=None,
                     metavar="N",
                     help="consecutive dispatch failures that open a "
                          "shard's circuit breaker (default: policy default)")
    res.add_argument("--breaker-cooldown", type=float, default=None,
                     metavar="S",
                     help="seconds an open breaker waits before half-open "
                          "probing (default: policy default)")
    res.add_argument("--tenant-cap", type=int, default=None, metavar="N",
                     help="max inflight requests per tenant (fairness; "
                          "default: uncapped)")
    res.add_argument("--faults", default=None, metavar="SPEC",
                     help="install a fault plan for this run (same grammar "
                          "as $BITPACKER_FAULTS, e.g. "
                          "'serve.kernel:raise%%0.05;serve.request:poison@3')")
    out = parser.add_argument_group("output")
    out.add_argument("--no-verify", action="store_true",
                     help="skip the byte-for-byte response audit")
    out.add_argument("--profile", action="store_true",
                     help="record repro.obs counters/histograms into the "
                          "report")
    out.add_argument("--json", default=None, metavar="PATH",
                     help="write the machine-readable report to PATH")
    out.add_argument("--quiet", action="store_true",
                     help="suppress the rendered report (exit code only)")
    return parser


def render_report(doc: dict) -> str:
    lines = [
        "bitpacker-serve load report",
        f"  seed {doc['seed']}  tenants {doc['tenants']}  "
        f"requests {doc['requests']}  burst {doc['burst']} "
        f"(gap {doc['burst_gap_s']:g}s)  zipf_s {doc['zipf_s']:g}",
        f"  submitted {doc['submitted']}  admitted {doc['admitted']}  "
        f"rejected {doc['rejected']}  shed {doc['shed']}  "
        f"completed {doc['completed']}  failed {doc['failed']}  "
        f"quarantined {doc['quarantined']}",
        f"  dropped {doc['dropped']}  corrupted {doc['corrupted']}",
        f"  wall {doc['wall_s']:.3f}s  "
        f"throughput {doc['throughput_rps']:.0f} req/s",
        f"  latency p50 {doc['p50_latency_ms']:.2f}ms  "
        f"p99 {doc['p99_latency_ms']:.2f}ms  "
        f"max {doc['max_latency_ms']:.2f}ms",
        f"  batches: mean size {doc['mean_batch_size']:.2f}, "
        f"max {doc['max_batch_size']}",
    ]
    service = doc.get("service", {})
    if service:
        lines.append(
            f"  keys: {service.get('keys_built', 0)} built, "
            f"{service.get('keys_reused', 0)} reused; "
            f"kernel batches {service.get('batches', 0)}"
        )
        if service.get("retried") or service.get("splits"):
            opens = sum(
                b.get("opens", 0) for b in service.get("breakers", [])
            )
            lines.append(
                f"  resilience: {service['retried']} re-dispatches, "
                f"{service['splits']} group splits, "
                f"{service.get('expired', 0)} expired, "
                f"breaker opens {opens}"
            )
    if doc["reject_codes"]:
        codes = ", ".join(
            f"{n}x {code}" for code, n in sorted(doc["reject_codes"].items())
        )
        lines.append(f"  rejections by code: {codes}")
    if doc.get("failure_codes"):
        codes = ", ".join(
            f"{n}x {code}" for code, n in sorted(doc["failure_codes"].items())
        )
        lines.append(f"  failures by code: {codes}")
    tenants = service.get("tenants", {})
    noisy = {
        name: t for name, t in tenants.items()
        if t.get("rejected") or t.get("shed") or t.get("failed")
        or t.get("quarantined")
    }
    if noisy:
        lines.append("  per-tenant (non-clean only):")
        for name, t in sorted(noisy.items()):
            lines.append(
                f"    {name}: submitted {t['submitted']}  "
                f"rejected {t['rejected']}  shed {t['shed']}  "
                f"failed {t['failed']}  quarantined {t['quarantined']}"
            )
    return "\n".join(lines)


def _resilience_kwargs(args) -> dict:
    """Service kwargs for the resilience flags (defaults stay policy)."""
    kwargs: dict = {}
    if args.request_timeout is not None:
        kwargs["request_timeout_s"] = args.request_timeout
    retry_overrides = {}
    if args.retries is not None:
        retry_overrides["retries"] = args.retries
    if args.retry_backoff is not None:
        retry_overrides["backoff"] = args.retry_backoff
    if retry_overrides:
        kwargs["retry"] = RetryPolicy(**retry_overrides)
    breaker_overrides = {}
    if args.breaker_threshold is not None:
        breaker_overrides["failure_threshold"] = args.breaker_threshold
    if args.breaker_cooldown is not None:
        breaker_overrides["cooldown_s"] = args.breaker_cooldown
    if breaker_overrides:
        kwargs["breaker"] = BreakerPolicy(**breaker_overrides)
    if args.tenant_cap is not None:
        kwargs["tenant_inflight_cap"] = args.tenant_cap
    return kwargs


def _run(args) -> int:
    spec = LoadSpec(
        seed=args.seed,
        tenants=args.tenants,
        requests=args.requests,
        zipf_s=args.zipf_s,
        burst=args.burst,
        burst_gap_s=args.burst_gap,
        deadline_s=args.request_timeout,
        n=args.n,
        word_bits=args.word,
        compiled=args.compiled,
    )
    profiling = args.profile
    if profiling:
        from repro import obs

        obs.enable()
        obs.reset()
    if args.faults:
        from repro.eval import faults

        fault_context = faults.injected(args.faults)
    else:
        fault_context = contextlib.nullcontext()
    try:
        with fault_context:
            report = asyncio.run(run_scenario(
                spec,
                verify=not args.no_verify,
                shards=args.shards,
                queue_depth=args.queue_depth,
                high_water=args.high_water,
                max_batch=args.max_batch,
                **_resilience_kwargs(args),
            ))
    finally:
        if profiling:
            from repro import obs

            obs.disable()
    doc = report.to_dict()
    if profiling:
        from repro import obs

        doc["obs"] = {
            "counters": obs.counters(),
            "histograms": obs.histograms(),
        }
        obs.reset()
    if args.json:
        out = Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")
        print(f"[serve] report -> {out}", file=sys.stderr)
    if not args.quiet:
        print(render_report(doc))
    problems = audit_report(report)
    if problems:
        print(f"[serve] FAILED: {'; '.join(problems)}", file=sys.stderr)
        return 1
    return 0


def audit_report(report) -> list[str]:
    """The exit-code audit: what, if anything, makes this run a failure.

    Quarantined requests are *not* failures — isolating a poison
    request instead of 500ing its batch peers is the designed outcome —
    but dropped/corrupted/failed responses and unbalanced extended
    books are.
    """
    problems = []
    if report.dropped:
        problems.append(f"{report.dropped} dropped response(s)")
    if report.corrupted:
        problems.append(f"{report.corrupted} corrupted response(s)")
    if report.failed:
        problems.append(f"{report.failed} failed request(s)")
    if report.submitted != (
        report.admitted + report.rejected + report.shed + report.dropped
    ):
        problems.append("request books do not balance")
    if report.admitted != (
        report.completed + report.failed + report.quarantined
    ):
        problems.append("settlement books do not balance")
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.backend is None:
            return _run(args)
        import repro.backends as kernel_backends
        from repro.errors import ParameterError

        backend = args.backend.strip().lower()
        if backend != "auto":
            try:
                kernel_backends.get_backend(backend)
            except ParameterError as exc:
                print(f"error: {exc}", file=sys.stderr)
                return 2
        with kernel_backends.use(backend):
            return _run(args)
    except KeyboardInterrupt:
        # The service context manager drained on the way out; 130 is
        # the conventional SIGINT exit status.
        print("[serve] interrupted — drained and stopped", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
