"""Serve-layer resilience primitives: retries, breakers, deadlines.

The batch runner earned its fault discipline in PR 4 (bounded retries
with deterministic-jitter backoff, per-task deadlines, quarantine for
inputs that fail deterministically).  This module gives the asyncio
serve layer the same vocabulary, tuned for a request path measured in
milliseconds rather than a sweep measured in minutes:

- :class:`RetryPolicy` — how a failed kernel dispatch is retried.  The
  backoff curve is the runner's (``base * 2**(n-1)``, capped, jittered
  to [0.5x, 1.5x) by a seeded hash so two runs of the same load replay
  the same delays), with serve-scale defaults.
- :class:`CircuitBreaker` — the per-shard closed → open → half-open
  state machine.  Consecutive dispatch failures past a threshold open
  the breaker; while open, admission sheds load with 503-class
  responses instead of queuing work a sick shard cannot finish; after
  a cooldown the breaker admits a bounded number of probes
  (half-open) and either closes on success or re-opens on failure.
  The clock is injectable so tests drive the state machine without
  sleeping.
- :class:`DeadlineExceeded` / :func:`remaining` — per-request deadline
  bookkeeping.  Deadlines are absolute ``time.monotonic()`` instants
  propagated from ``submit()`` through coalescing into every retry
  decision, so a request never burns backoff sleeps it can no longer
  afford.

Everything here is pure bookkeeping — no asyncio imports, no sleeps —
so the policies are trivially testable and the service stays the only
place that touches the event loop.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ParameterError

#: Breaker states (string-valued so ``health()`` serializes directly).
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class DeadlineExceeded(Exception):
    """A request's deadline passed before (or during) execution.

    Like :class:`repro.eval.faults.FaultInjected`, deliberately not a
    :class:`~repro.errors.ReproError`: it is an outcome of load and
    scheduling, not a caller mistake, and resolves as a 504-class
    response rather than an admission rejection.
    """


def remaining(deadline: float | None, now: float | None = None) -> float:
    """Seconds left until ``deadline`` (``inf`` when there is none)."""
    if deadline is None:
        return float("inf")
    if now is None:
        now = time.monotonic()
    return deadline - now


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded, deadline-aware retry knobs for kernel dispatches.

    ``retries`` bounds the re-dispatches of a *singleton* group — a
    failing multi-request group is split in half instead (no budget
    consumed; the bisection itself is bounded by ``log2(max_batch)``),
    so one poison request costs O(log B) extra dispatches, not O(B),
    and its peers never pay the retry budget.
    """

    #: Extra attempts after the first, per singleton dispatch.
    retries: int = 2
    #: Backoff base: retry ``n`` waits about ``backoff * 2**(n-1)``.
    backoff: float = 0.01
    backoff_cap: float = 0.25

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ParameterError(f"retries must be >= 0, got {self.retries}")
        if self.backoff < 0:
            raise ParameterError(f"backoff must be >= 0, got {self.backoff}")

    def delay_for(self, seq: int, failure: int) -> float:
        """Backoff before retry ``failure`` (1-based) of request ``seq``.

        Deterministic-jitter exponential backoff, the same curve as
        :meth:`repro.eval.runner.RunPolicy.delay_for`: the jitter is a
        seeded hash of ``(seq, failure)``, so a replayed load schedule
        replays its exact retry timing.
        """
        if self.backoff <= 0.0:
            return 0.0
        base = min(self.backoff_cap, self.backoff * 2.0 ** (failure - 1))
        return base * (0.5 + _jitter(seq, failure))


def _jitter(seq: int, failure: int) -> float:
    """Deterministic jitter in [0, 1): same request, same delays."""
    blob = f"serve-backoff:{seq}:{failure}".encode()
    return int(hashlib.sha256(blob).hexdigest()[:8], 16) / 2.0**32


@dataclass(frozen=True)
class BreakerPolicy:
    """When a shard's breaker opens, and how it recovers."""

    #: Consecutive dispatch failures that open the breaker.
    failure_threshold: int = 5
    #: Seconds the breaker stays open before probing (half-open).
    cooldown_s: float = 0.25
    #: Admissions allowed through while half-open.
    half_open_probes: int = 1

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ParameterError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_s < 0:
            raise ParameterError(
                f"cooldown_s must be >= 0, got {self.cooldown_s}"
            )
        if self.half_open_probes < 1:
            raise ParameterError(
                f"half_open_probes must be >= 1, got {self.half_open_probes}"
            )


@dataclass
class CircuitBreaker:
    """Per-shard load shedding on consecutive kernel failures.

    State machine::

        closed --[threshold consecutive failures]--> open
        open   --[cooldown elapsed, at admission]--> half-open
        half-open --[dispatch success]--> closed
        half-open --[dispatch failure]--> open  (cooldown restarts)

    ``allow()`` is consulted at admission (it performs the open →
    half-open transition and meters probes); ``record_success`` /
    ``record_failure`` are driven by dispatch outcomes.  The clock is
    injectable (``clock=``) so tests step through cooldowns without
    wall-clock sleeps.
    """

    policy: BreakerPolicy = field(default_factory=BreakerPolicy)
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.opens = 0  # lifetime open transitions (stats)
        self.shed = 0  # admissions rejected while open (stats)
        self._probes_inflight = 0

    def allow(self) -> bool:
        """Whether admission may enqueue work for this shard now."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self.clock() - self.opened_at >= self.policy.cooldown_s:
                self.state = HALF_OPEN
                self._probes_inflight = 0
            else:
                self.shed += 1
                return False
        # Half-open: meter probes so one burst cannot re-flood a shard
        # that may still be sick.
        if self._probes_inflight >= self.policy.half_open_probes:
            self.shed += 1
            return False
        self._probes_inflight += 1
        return True

    def record_success(self) -> None:
        self.consecutive_failures = 0
        if self.state == HALF_OPEN:
            self.state = CLOSED
            self._probes_inflight = 0

    def record_failure(self) -> None:
        self.consecutive_failures += 1
        if self.state == HALF_OPEN or (
            self.state == CLOSED
            and self.consecutive_failures >= self.policy.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self.opened_at = self.clock()
        self.opens += 1
        self._probes_inflight = 0

    def snapshot(self) -> dict:
        """Serializable view for ``health()`` / ``stats()``."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
            "shed": self.shed,
        }
