"""Request coalescing: compatible ciphertext ops become one kernel call.

FHE accelerator throughput comes from keeping wide batched kernels
saturated, not from executing requests one at a time (Cheddar,
PAPERS.md).  The serve batcher exploits the same structure the PR-1
vectorization did: a pointwise ciphertext op over an RNS residue stack
is ``k`` independent rows against a ``(k, 1)`` modulus column, so *B*
requests that share a modulus chain and level are exactly one
``(B*k, n)`` matrix against the tiled column — a single dispatch
through the backend registry instead of *B*.

Compatibility is strict: requests coalesce iff they agree on the key
fingerprint (same chain primes), the level (same row count and moduli
prefix) and the op.  Mixed-level traffic **must not** coalesce — the
rows would reduce against the wrong moduli — and
:func:`coalesce` keys on exactly that triple.  Because every batched
kernel is elementwise over rows, a coalesced result is byte-identical
to the serial one; ``tests/test_serve.py`` pins that across backends.

Executable ops map trace kinds onto the kernels a long-running service
can run statelessly per request:

- ``mul`` (``HMUL``/``PMUL``): the NTT-domain Hadamard product, through
  :func:`repro.backends.pointwise_mul` (registry-dispatched, so the
  numba fast path serves batches when available);
- ``add`` (``HADD``/``PADD``): elementwise modular addition via
  :func:`repro.nt.modmath.mod_add` (no registry entry — a single
  fused numpy expression is already matrix-at-a-time).

``RESCALE``/``ADJUST``/``HROT`` remain schedule-only kinds: they are
verified by the admission gate but carry no per-request payload here,
and submitting one is a 400-class admission error.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

import repro.backends as backends
import repro.nt.modmath as modmath
from repro.errors import ParameterError
from repro.serve.keys import KeyMaterial
from repro.trace.program import OpKind

#: Trace op kinds a request may execute, and the kernel each maps to.
EXECUTABLE_KINDS: dict[OpKind, str] = {
    OpKind.HMUL: "mul",
    OpKind.PMUL: "mul",
    OpKind.HADD: "add",
    OpKind.PADD: "add",
}

#: The ops :func:`execute_group` understands.
OPS = ("mul", "add")


@dataclass
class OpRequest:
    """One admitted ciphertext op: operands plus its batch identity.

    ``a``/``b`` are ``(level + 1, n)`` uint64 residue stacks, row ``i``
    reduced mod ``key.primes[i]``.  ``seq`` is the service's admission
    sequence number (response ordering / debugging); ``context`` is an
    opaque slot the service uses to carry its response future.

    ``deadline`` is an absolute ``time.monotonic()`` instant (``None``
    = no deadline) propagated from ``submit()`` through coalescing:
    batching and retries are latency decisions and must never execute
    work the submitter has already given up on.  ``poisoned`` marks a
    request the fault injector declared kernel-fatal
    (``serve.request:poison``); it rides the request so the
    split-and-retry path can be tested against a deterministic poison.
    """

    tenant: str
    key: KeyMaterial
    op: str
    level: int
    a: np.ndarray
    b: np.ndarray
    seq: int = 0
    deadline: float | None = None
    poisoned: bool = False
    context: Any = field(default=None, repr=False)

    def batch_key(self) -> tuple[str, int, str]:
        """Requests coalesce iff this triple matches exactly."""
        return (self.key.fingerprint, self.level, self.op)


def validate_operands(request: OpRequest) -> None:
    """Shape/dtype/op admission checks (raise :class:`ParameterError`)."""
    if request.op not in OPS:
        raise ParameterError(
            f"unknown serve op {request.op!r}; known: {', '.join(OPS)}"
        )
    rows = request.level + 1
    n = request.key.params.n
    for label, mat in (("a", request.a), ("b", request.b)):
        if not isinstance(mat, np.ndarray) or mat.dtype != np.uint64:
            raise ParameterError(
                f"operand {label} must be a uint64 ndarray, got "
                f"{getattr(mat, 'dtype', type(mat).__name__)}"
            )
        if mat.shape != (rows, n):
            raise ParameterError(
                f"operand {label} must have shape ({rows}, {n}) at level "
                f"{request.level}, got {mat.shape}"
            )


def coalesce(requests: list[OpRequest]) -> list[list[OpRequest]]:
    """Group a drained queue run into compatible batches.

    Grouping is stable: batches are ordered by the first appearance of
    their key, and requests keep their relative order inside a batch,
    so two runs over the same queue contents produce the same batches.
    """
    groups: dict[tuple, list[OpRequest]] = {}
    for request in requests:
        groups.setdefault(request.batch_key(), []).append(request)
    return list(groups.values())


def _kernel(op: str, a: np.ndarray, b: np.ndarray, q_col: np.ndarray,
            kind: str) -> np.ndarray:
    if op == "mul":
        return backends.pointwise_mul(a, b, q_col, kind)
    return modmath.mod_add(a, b, q_col)


def execute_serial(request: OpRequest) -> np.ndarray:
    """Reference path: one request, one kernel call.

    The byte-identity oracle for the batched path (and the executor for
    singleton groups — a batch of one *is* the serial call).
    """
    key = request.key
    return _kernel(
        request.op, request.a, request.b, key.q_col(request.level), key.kind
    )


def execute_group(group: list[OpRequest]) -> list[np.ndarray]:
    """Execute one coalesced batch as a single matrix-at-a-time call.

    Stacks the ``B`` member stacks into one ``(B*k, n)`` matrix, tiles
    the shared modulus column, dispatches once, and slices the result
    back per request.  Row-elementwise kernels make this bit-exact
    against :func:`execute_serial`.
    """
    if not group:
        return []
    if len(group) == 1:
        return [execute_serial(group[0])]
    first = group[0]
    key = first.key
    expected = first.batch_key()
    for request in group[1:]:
        if request.batch_key() != expected:
            raise ParameterError(
                f"incompatible batch: {request.batch_key()} vs {expected}"
            )
    rows = first.level + 1
    a = np.vstack([request.a for request in group])
    b = np.vstack([request.b for request in group])
    q_col = np.tile(key.q_col(first.level), (len(group), 1))
    out = _kernel(first.op, a, b, q_col, key.kind)
    return [out[i * rows:(i + 1) * rows] for i in range(len(group))]
