"""Benchmark workloads (paper Sec. 5) as homomorphic-operation traces."""

from repro.workloads.apps import (
    APP_SCALES,
    BENCHMARKS,
    logreg,
    resnet20,
    resnet20_aespa,
    rnn,
    squeezenet,
)
from repro.workloads.bootstrap_model import (
    BS19_SCHEDULE,
    BS26_SCHEDULE,
    SCHEDULES,
    BootstrapSchedule,
)
from repro.workloads.walker import ProgramWalker, app_levels_for, level_schedule

__all__ = [
    "BENCHMARKS",
    "APP_SCALES",
    "resnet20",
    "resnet20_aespa",
    "rnn",
    "squeezenet",
    "logreg",
    "BS19_SCHEDULE",
    "BS26_SCHEDULE",
    "SCHEDULES",
    "BootstrapSchedule",
    "ProgramWalker",
    "app_levels_for",
    "level_schedule",
]
