"""The paper's five benchmark applications as trace generators (Sec. 5).

Each generator reproduces the *structure* of the published FHE program —
operation mix per layer/iteration, multiplicative depth, scale choices,
and bootstrap cadence — from the networks' published shapes:

- **ResNet-20** (Lee et al., ICML'22): multiplexed parallel convolutions
  and composite-minimax ReLU (high degree, deep), 45-bit scales.
- **ResNet-20+AESPA** (Park et al.): degree-2 activations, shallow.
- **RNN**: 200 recurrent steps, 128-dim state, two dense matvecs and a
  degree-3 activation per step, 45-bit scales.
- **SqueezeNet** (AESPA activations), 35-bit scales.
- **LogReg** (HELR, Han et al.): 32 Nesterov iterations over a 1024 x 197
  batch, 35-bit scales.

Per-layer operation counts are structural estimates (documented inline)
and are identical across schemes and word sizes, so comparative results
do not depend on their absolute values.  What *does* change per scheme
and word size — as in the paper — is the bootstrap cadence: a scheme
that cannot realize a scale consumes more modulus per level and
therefore gets fewer application levels under the same security budget
(``scheme`` / ``word_bits`` arguments).
"""

from __future__ import annotations

from typing import Callable

from repro.trace.program import HeTrace
from repro.workloads.bootstrap_model import BootstrapSchedule
from repro.workloads.walker import (
    DEFAULT_BASE_BITS,
    DEFAULT_MAX_LOG_Q,
    DEFAULT_N,
    ProgramWalker,
)

#: Application scales from Sec. 5: ResNet and RNN need 45-bit scales,
#: SqueezeNet and LogReg work at 35 bits.
RESNET_SCALE_BITS = 45.0
RNN_SCALE_BITS = 45.0
SQUEEZENET_SCALE_BITS = 35.0
LOGREG_SCALE_BITS = 35.0


def _walker(
    name: str, scale_bits: float, schedule: BootstrapSchedule, n: int,
    max_log_q: float, scheme: str, word_bits: int, ks_digits: int,
) -> ProgramWalker:
    return ProgramWalker(
        name=f"{name} ({schedule.name})",
        app_scale_bits=scale_bits,
        schedule=schedule,
        n=n,
        base_bits=DEFAULT_BASE_BITS,
        max_log_q=max_log_q,
        scheme=scheme,
        word_bits=word_bits,
        ks_digits=ks_digits,
    )


# ----------------------------------------------------------------------
# ResNet-20 building blocks
# ----------------------------------------------------------------------
def _conv_layer(w: ProgramWalker, rot: float, pmul: float) -> None:
    """Multiplexed parallel convolution (Lee et al.): 3x3 neighborhood
    rotations plus channel-accumulation rotations, one plaintext multiply
    per packed filter, depth 2 (conv product + folded batch-norm scale)."""
    w.ensure(2)
    w.ops(rot=rot, pmul=pmul, hadd=pmul)
    w.descend()
    w.ops(pmul=1.0)  # batch-norm scale fold
    w.descend()


def _relu_minimax(w: ProgramWalker) -> None:
    """Composite minimax ReLU approximation (degrees {15, 15, 27}):
    ~10 multiplicative levels, ~2 ciphertext multiplies per level."""
    for _ in range(10):
        w.ensure(1)
        w.ops(hmul=2.0, hadd=2.0, pmul=0.5)
        w.descend()


def _aespa_activation(w: ProgramWalker) -> None:
    """AESPA degree-2 activation: one square plus an affine correction."""
    w.ensure(2)
    w.ops(hmul=1.0, pmul=1.0, padd=1.0)
    w.descend()
    w.ops(pmul=1.0)
    w.descend()


def _resnet_backbone(w: ProgramWalker, activation: Callable) -> None:
    """20-layer CIFAR-10 ResNet: stem + 3 stages x 3 basic blocks."""
    stage_params = [  # (rotations, plaintext multiplies) per conv
        (14.0, 18.0),  # 16 channels, 32x32
        (16.0, 27.0),  # 32 channels, 16x16
        (18.0, 36.0),  # 64 channels, 8x8
    ]
    _conv_layer(w, *stage_params[0])  # stem
    activation(w)
    for stage, (rot, pmul) in enumerate(stage_params):
        for _block in range(3):
            _conv_layer(w, rot, pmul)
            activation(w)
            _conv_layer(w, rot, pmul)
            # Residual add: the skip branch is adjusted down to the
            # trunk's level (the adjust traffic of Fig. 12).
            w.adjust_from(src_offset=4)
            w.ops(hadd=1.0)
            activation(w)
    # Average pool + fully connected classifier.
    w.ensure(2)
    w.ops(rot=6.0, hadd=6.0)
    w.ops(pmul=4.0, rot=8.0, hadd=8.0)
    w.descend()


def resnet20(
    schedule: BootstrapSchedule,
    n: int = DEFAULT_N,
    max_log_q: float = DEFAULT_MAX_LOG_Q,
    scheme: str = "bitpacker",
    word_bits: int = 28,
    ks_digits: int = 3,
) -> HeTrace:
    """ResNet-20 with minimax ReLU (deep; frequent bootstrapping)."""
    w = _walker("ResNet-20", RESNET_SCALE_BITS, schedule, n, max_log_q,
                scheme, word_bits, ks_digits)
    _resnet_backbone(w, _relu_minimax)
    return w.build()


def resnet20_aespa(
    schedule: BootstrapSchedule,
    n: int = DEFAULT_N,
    max_log_q: float = DEFAULT_MAX_LOG_Q,
    scheme: str = "bitpacker",
    word_bits: int = 28,
    ks_digits: int = 3,
) -> HeTrace:
    """ResNet-20 with AESPA degree-2 activations (shallow; few boots)."""
    w = _walker("ResNet-20+AESPA", RESNET_SCALE_BITS, schedule, n, max_log_q,
                scheme, word_bits, ks_digits)
    _resnet_backbone(w, _aespa_activation)
    return w.build()


# ----------------------------------------------------------------------
def rnn(
    schedule: BootstrapSchedule,
    n: int = DEFAULT_N,
    max_log_q: float = DEFAULT_MAX_LOG_Q,
    scheme: str = "bitpacker",
    word_bits: int = 28,
    ks_digits: int = 3,
) -> HeTrace:
    """Sentiment-analysis RNN: ``h = σ(W_hh h + W_ih x + b)`` 200 times.

    Each step runs two 128x128 dense matvecs (BSGS diagonal method:
    ~2·sqrt(128) rotations and 128 plaintext diagonal multiplies each)
    and a degree-3 activation (2 multiplicative levels).
    """
    w = _walker("RNN", RNN_SCALE_BITS, schedule, n, max_log_q,
                scheme, word_bits, ks_digits)
    for _step in range(200):
        w.ensure(3)
        # W_hh · h and W_ih · x, evaluated together on packed operands.
        w.ops(rot=22.0, pmul=48.0, hadd=48.0, padd=1.0)
        w.descend()
        # σ: degree-3 polynomial, Horner over 2 levels.
        w.ops(hmul=1.0, pmul=1.0, hadd=1.0)
        w.descend()
        w.ops(hmul=1.0, padd=1.0)
        w.descend()
    return w.build()


def squeezenet(
    schedule: BootstrapSchedule,
    n: int = DEFAULT_N,
    max_log_q: float = DEFAULT_MAX_LOG_Q,
    scheme: str = "bitpacker",
    word_bits: int = 28,
    ks_digits: int = 3,
) -> HeTrace:
    """SqueezeNet (CIFAR-10) with AESPA activations (Sec. 5).

    Eight fire modules (squeeze 1x1 + expand 1x1/3x3) between a stem and
    a classifier conv; all activations degree-2.
    """
    w = _walker("SqueezeNet", SQUEEZENET_SCALE_BITS, schedule, n, max_log_q,
                scheme, word_bits, ks_digits)
    _conv_layer(w, rot=10.0, pmul=12.0)  # stem
    _aespa_activation(w)
    for _fire in range(8):
        _conv_layer(w, rot=6.0, pmul=8.0)  # squeeze 1x1
        _aespa_activation(w)
        _conv_layer(w, rot=10.0, pmul=14.0)  # expand 1x1 + 3x3
        _aespa_activation(w)
    w.ensure(2)
    w.ops(rot=8.0, pmul=10.0, hadd=10.0)  # classifier conv + global pool
    w.descend()
    return w.build()


def logreg(
    schedule: BootstrapSchedule,
    n: int = DEFAULT_N,
    max_log_q: float = DEFAULT_MAX_LOG_Q,
    scheme: str = "bitpacker",
    word_bits: int = 28,
    ks_digits: int = 3,
) -> HeTrace:
    """HELR logistic-regression training (32 NAG iterations, Sec. 5).

    Batch 1024 x 197 features packed across slots.  Each iteration:
    forward products ``X·w`` (rotation-based row sums), a degree-3
    sigmoid approximation, the gradient ``X^T·v`` (rotation-based column
    sums), and the Nesterov momentum update.
    """
    w = _walker("LogReg", LOGREG_SCALE_BITS, schedule, n, max_log_q,
                scheme, word_bits, ks_digits)
    for _iteration in range(32):
        w.ensure(4)
        w.ops(pmul=4.0, rot=8.0, hadd=8.0)  # X·w row sums
        w.descend()
        w.ops(hmul=2.0, pmul=2.0, hadd=2.0)  # sigmoid, level 1
        w.descend()
        w.ops(hmul=2.0, rot=8.0, hadd=8.0)  # sigmoid finish + X^T·v
        w.descend()
        w.ops(pmul=3.0, hadd=3.0)  # NAG update of w and momentum
        w.adjust_from(src_offset=2)  # momentum term re-alignment
        w.descend()
    return w.build()


#: Benchmark registry used by every evaluation harness.
BENCHMARKS: dict[str, Callable[..., HeTrace]] = {
    "ResNet-20": resnet20,
    "ResNet-20+AESPA": resnet20_aespa,
    "RNN": rnn,
    "SqueezeNet": squeezenet,
    "LogReg": logreg,
}

#: Application scale per benchmark (Sec. 5).
APP_SCALES = {
    "ResNet-20": RESNET_SCALE_BITS,
    "ResNet-20+AESPA": RESNET_SCALE_BITS,
    "RNN": RNN_SCALE_BITS,
    "SqueezeNet": SQUEEZENET_SCALE_BITS,
    "LogReg": LOGREG_SCALE_BITS,
}
