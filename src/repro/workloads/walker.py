"""Program walker: tracks the level cursor and inserts bootstraps.

Applications consume levels as they multiply and rescale (Fig. 3's
downward slope); when the cursor would drop below level 1 the walker
emits a full bootstrap (Fig. 3's reset) and resumes at the application's
top level.  This reproduces exactly the leveled-execution structure the
paper describes in Sec. 2.2.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.trace.program import HeTrace, TraceBuilder
from repro.workloads.bootstrap_model import BootstrapSchedule

#: The parameters of the paper's evaluation (Sec. 5).
DEFAULT_N = 65536
DEFAULT_BASE_BITS = 60.0
DEFAULT_MAX_LOG_Q = 1596.0


def effective_scale_bits(
    target_bits: float, scheme: str, n: int, word_bits: int
) -> float:
    """Modulus a level really consumes for a target scale under a scheme.

    BitPacker meets any target (Sec. 3.3); RNS-CKKS is limited to scales
    that products of 1..k NTT-friendly primes can reach (Sec. 5), so an
    unreachable target consumes the smallest achievable scale above it.
    """
    if scheme == "bitpacker":
        return target_bits
    from repro.schemes.rns_ckks import _usable_word_bits, achievable_scale_bits
    from repro.schemes.selection import min_prime_bits

    return achievable_scale_bits(
        target_bits, _usable_word_bits(n, word_bits), min_prime_bits(n)
    )


def app_levels_for(
    app_scale_bits: float,
    schedule: BootstrapSchedule,
    max_log_q: float = DEFAULT_MAX_LOG_Q,
    base_bits: float = DEFAULT_BASE_BITS,
    scheme: str = "bitpacker",
    n: int = DEFAULT_N,
    word_bits: int = 28,
    ks_digits: int = 3,
) -> int:
    """Application levels that fit the modulus budget below one bootstrap.

    ``log2 Qmax`` is a budget on the *total* modulus ``Q·P`` (the security
    constraint of Sec. 3.4 covers the keyswitching specials too); with
    ``d``-digit keyswitching ``P ~ Q/d``, leaving ``Q`` a ``d/(d+1)``
    share.  Within it, ``log2 Q = base + bootstrap modulus + L_app *
    app_scale`` — the leveled-execution accounting of Sec. 2.2.  Scales a
    scheme cannot realize consume their smallest achievable substitute,
    so RNS-CKKS at narrow words gets fewer application levels (and
    bootstraps more often) than BitPacker under the same security budget
    — one of the paper's sources of speedup (Sec. 5).
    """
    boot_bits = sum(
        effective_scale_bits(t, scheme, n, word_bits)
        for t in schedule.level_scale_bits
    )
    eff_app = effective_scale_bits(app_scale_bits, scheme, n, word_bits)
    q_budget = max_log_q * ks_digits / (ks_digits + 1)
    budget = q_budget - base_bits - boot_bits
    levels = int(budget // eff_app)
    if levels < 2:
        raise ParameterError(
            f"modulus budget leaves only {levels} application levels for a "
            f"{app_scale_bits}-bit scale under {schedule.name}"
        )
    return levels


def level_schedule(
    app_scale_bits: float,
    app_levels: int,
    schedule: BootstrapSchedule,
) -> tuple[float, ...]:
    """Per-level target scales, level 0 up to Lmax (Fig. 8's program map)."""
    app_part = [app_scale_bits] * (app_levels + 1)  # levels 0..L_app
    boot_part = list(reversed(schedule.level_scale_bits))  # ascending levels
    return tuple(app_part + boot_part)


class ProgramWalker:
    """Emits an application's trace with automatic bootstrap insertion."""

    def __init__(
        self,
        name: str,
        app_scale_bits: float,
        schedule: BootstrapSchedule,
        n: int = DEFAULT_N,
        base_bits: float = DEFAULT_BASE_BITS,
        max_log_q: float = DEFAULT_MAX_LOG_Q,
        scheme: str = "bitpacker",
        word_bits: int = 28,
        ks_digits: int = 3,
    ):
        self.schedule = schedule
        self.app_top = app_levels_for(
            app_scale_bits, schedule, max_log_q, base_bits, scheme, n,
            word_bits, ks_digits,
        )
        scales = level_schedule(app_scale_bits, self.app_top, schedule)
        self.builder = TraceBuilder(
            name=name, n=n, base_bits=base_bits, level_scale_bits=scales
        )
        self.level = self.app_top
        self.bootstraps = 0

    # ------------------------------------------------------------------
    @property
    def max_level(self) -> int:
        return len(self.builder.level_scale_bits) - 1

    def ensure(self, depth: int) -> None:
        """Bootstrap now if fewer than ``depth`` levels remain."""
        if depth > self.app_top:
            raise ParameterError(
                f"step needs {depth} levels but only {self.app_top} exist "
                "between bootstraps"
            )
        if self.level - depth < 0:
            self.bootstrap()

    def bootstrap(self) -> None:
        """Emit one full bootstrap and reset the cursor (Fig. 3)."""
        exit_level = self.schedule.emit(self.builder, self.max_level)
        self.level = exit_level
        self.bootstraps += 1

    # ------------------------------------------------------------------
    def ops(
        self,
        rot: float = 0.0,
        hmul: float = 0.0,
        pmul: float = 0.0,
        hadd: float = 0.0,
        padd: float = 0.0,
    ) -> None:
        """Record operations at the current level."""
        b = self.builder
        b.hrot(self.level, rot)
        b.hmul(self.level, hmul)
        b.pmul(self.level, pmul)
        b.hadd(self.level, hadd)
        b.padd(self.level, padd)

    def descend(self, levels: int = 1, ciphertexts: float = 1.0) -> None:
        """Rescale ``ciphertexts`` live ciphertexts down ``levels`` levels."""
        for _ in range(levels):
            if self.level == 0:
                raise ParameterError("descend below level 0; call ensure() first")
            self.builder.rescale(self.level, ciphertexts)
            self.level -= 1

    def adjust_from(self, src_offset: int, ciphertexts: float = 1.0) -> None:
        """Adjust a ciphertext from ``level + src_offset`` to the cursor.

        Models residual/skip connections and operand re-alignment, the
        adjust traffic Fig. 12 breaks out.
        """
        src = min(self.level + src_offset, self.max_level)
        if src > self.level:
            self.builder.adjust(src, self.level, ciphertexts)

    def build(self) -> HeTrace:
        return self.builder.build()
