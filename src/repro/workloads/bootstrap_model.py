"""Bootstrapping as an operation schedule (paper Secs. 2.2 and 5).

The performance experiments consume bootstrapping as a sequence of
homomorphic operations at known scales: CoeffToSlot (CtS) at high
levels, EvalMod (the homomorphic modular reduction) in the middle, and
SlotToCoeff (StC) at the bottom, after which the ciphertext re-enters
application levels.  The paper's two Lattigo configurations differ in
their stage scales and end-to-end precision:

- **BS19**: scales 52 / 55 / 30 bits, 19-bit precision,
- **BS26**: scales 54 / 60 / 40 bits, 26-bit precision (a bit costlier).

Per-stage op counts are structural estimates for ``N = 2^16`` slots with
baby-step/giant-step linear transforms and a degree-63 sine polynomial
with double-angle iterations — the standard Lattigo recipe.  They are
held identical across schemes and word sizes, so every comparison in the
paper's evaluation is unaffected by the estimates' absolute values.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ckks.bootstrap import BS19 as _BS19_ALGO
from repro.ckks.bootstrap import BS26 as _BS26_ALGO
from repro.ckks.bootstrap import BootstrapAlgorithm
from repro.trace.program import TraceBuilder


@dataclass(frozen=True)
class StageModel:
    """One bootstrap stage: levels consumed and per-level op counts."""

    levels: int
    scale_bits: float
    rot_per_level: float = 0.0
    hmul_per_level: float = 0.0
    pmul_per_level: float = 0.0
    hadd_per_level: float = 0.0


@dataclass(frozen=True)
class BootstrapSchedule:
    """A full bootstrap: CtS -> EvalMod -> StC (Fig. 3's reset arc)."""

    algorithm: BootstrapAlgorithm
    cts: StageModel
    evalmod: StageModel
    stc: StageModel

    @property
    def name(self) -> str:
        return self.algorithm.name

    @property
    def depth(self) -> int:
        """Levels a single bootstrap consumes."""
        return self.cts.levels + self.evalmod.levels + self.stc.levels

    @property
    def level_scale_bits(self) -> tuple[float, ...]:
        """Per-level scale targets, from the top level downward."""
        out: list[float] = []
        out += [self.cts.scale_bits] * self.cts.levels
        out += [self.evalmod.scale_bits] * self.evalmod.levels
        out += [self.stc.scale_bits] * self.stc.levels
        return tuple(out)

    @property
    def modulus_bits(self) -> float:
        """Total modulus consumed by one bootstrap."""
        return sum(self.level_scale_bits)

    def emit(self, builder: TraceBuilder, top_level: int) -> int:
        """Record one bootstrap starting at ``top_level``.

        Returns the level at which the refreshed ciphertext re-enters
        application computation.
        """
        level = top_level
        for stage in (self.cts, self.evalmod, self.stc):
            for _ in range(stage.levels):
                builder.hrot(level, stage.rot_per_level)
                builder.hmul(level, stage.hmul_per_level)
                builder.pmul(level, stage.pmul_per_level)
                builder.hadd(level, stage.hadd_per_level)
                builder.rescale(level)
                level -= 1
        return level


def _make_schedule(algorithm: BootstrapAlgorithm) -> BootstrapSchedule:
    cts_bits, evalmod_bits, stc_bits = algorithm.stage_scale_bits
    # CtS/StC: BSGS-decomposed homomorphic DFT over 2^15 slots, split into
    # 4 / 3 matrix levels; EvalMod: degree-63 Chebyshev sine + 2
    # double-angle squarings, ~8 multiplicative levels.
    return BootstrapSchedule(
        algorithm=algorithm,
        cts=StageModel(
            levels=4, scale_bits=cts_bits,
            rot_per_level=28.0, pmul_per_level=28.0, hadd_per_level=28.0,
        ),
        evalmod=StageModel(
            levels=8, scale_bits=evalmod_bits,
            hmul_per_level=7.0, pmul_per_level=3.0, hadd_per_level=8.0,
        ),
        stc=StageModel(
            levels=3, scale_bits=stc_bits,
            rot_per_level=14.0, pmul_per_level=14.0, hadd_per_level=14.0,
        ),
    )


#: The two bootstrap configurations of the paper's evaluation (Sec. 5).
BS19_SCHEDULE = _make_schedule(_BS19_ALGO)
BS26_SCHEDULE = _make_schedule(_BS26_ALGO)

SCHEDULES = {"BS19": BS19_SCHEDULE, "BS26": BS26_SCHEDULE}
