"""Exception hierarchy for the BitPacker reproduction.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError):
    """Invalid or inconsistent scheme / machine parameters."""


class PlanningError(ReproError):
    """Modulus-chain planning failed.

    Raised, e.g., when no combination of NTT-friendly primes can meet a
    target scale within the required tolerance (paper Sec. 3.3), or when
    RNS-CKKS cannot realize a requested scale at a narrow word size.
    """


class LevelExhaustedError(ReproError):
    """A homomorphic operation was requested below level 0.

    In a real deployment this is where bootstrapping would be required;
    the workloads insert bootstraps before this can trigger.
    """


class ScaleMismatchError(ReproError):
    """Two ciphertexts with incompatible scales or moduli were combined."""


class NotOnChainError(ReproError):
    """A ciphertext's modulus set does not correspond to any chain level."""


class SimulationError(ReproError):
    """The accelerator model was driven with an inconsistent trace."""


class RunnerError(ReproError):
    """The experiment runner could not complete a grid task.

    Raised when a :func:`repro.eval.runner.map_grid` task keeps failing
    after its retry budget (crashed workers, timeouts, repeated task
    errors).  Deterministic library errors (:class:`ReproError`
    subclasses) are *not* wrapped — they re-raise as themselves, since
    retrying a deterministic failure cannot succeed.
    """


class ScheduleViolationError(ReproError):
    """A trace failed static schedule verification.

    Raised by :func:`repro.analysis.absint.verify_or_raise` — the
    pre-flight gate the eval harnesses run before pricing a trace.  A
    deterministic :class:`ReproError`, so the experiment runner reports
    it instead of retrying.
    """


class InvariantViolation(ReproError):
    """A runtime sanitizer check failed (see :mod:`repro.analysis.sanitize`).

    Raised only when the sanitizer is active (``REPRO_SANITIZE=1`` or
    :func:`repro.analysis.sanitize.enable`); with it disabled the checks
    are skipped entirely, so library hot paths pay nothing.
    """
