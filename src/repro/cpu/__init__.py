"""CPU cost model for CKKS (paper Fig. 13)."""

from repro.cpu.model import DEFAULT_CPU_MODEL, CpuModel, CpuResult

__all__ = ["CpuModel", "CpuResult", "DEFAULT_CPU_MODEL"]
