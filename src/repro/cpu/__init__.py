"""CPU cost model for CKKS (paper Fig. 13)."""

from repro.cpu.model import CpuModel, CpuResult, DEFAULT_CPU_MODEL

__all__ = ["CpuModel", "CpuResult", "DEFAULT_CPU_MODEL"]
