"""Operation-count CPU model (paper Sec. 6.4, Fig. 13).

Models a single-threaded 64-bit CPU (the paper's 3.5 GHz Zen 2) running
an RNS-CKKS/BitPacker library.  The paper's observations, which this
model reproduces structurally rather than by fitting:

- 64-bit words are the right choice on CPUs, so RNS-CKKS uses one
  residue per scale and BitPacker's packing advantage is the residue
  ratio alone (~1.2-1.4x), not the accelerator's superlinear gain;
- without a CRB-style specialized unit, NTT butterflies (which grow
  linearly in R) dominate, diluting the quadratic terms BitPacker
  shrinks;
- the CPU is compute-bound, so memory traffic is not modeled.

Per-element cycle weights approximate a Montgomery-multiplication NTT
implementation with AVX2 vectorization.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field

from repro.accel import kernels
from repro.errors import SimulationError
from repro.schemes.chain import ModulusChain
from repro.trace.program import LEVEL_MANAGEMENT_KINDS, HeTrace, OpKind, TraceOp


@dataclass
class CpuResult:
    """Aggregate CPU-model outcome for one trace."""

    name: str
    scheme: str
    cycles: float = 0.0
    level_mgmt_cycles: float = 0.0
    cycles_by_kind: dict[str, float] = field(default_factory=dict)
    clock_ghz: float = 3.5

    @property
    def time_s(self) -> float:
        return self.cycles / (self.clock_ghz * 1e9)

    @property
    def time_ms(self) -> float:
        return self.time_s * 1e3

    @property
    def level_mgmt_fraction(self) -> float:
        return self.level_mgmt_cycles / self.cycles if self.cycles else 0.0

    def to_dict(self) -> dict:
        """JSON-ready form for the experiment runner's disk cache."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict) -> "CpuResult":
        return cls(**data)


@dataclass(frozen=True)
class CpuModel:
    """Per-element cycle weights for a 64-bit scalar/AVX implementation."""

    clock_ghz: float = 3.5
    butterfly_cycles: float = 8.0  # modmul + 2 modadds + twiddle load
    mul_cycles: float = 5.0  # elementwise Montgomery multiply
    add_cycles: float = 1.5
    auto_cycles: float = 2.5  # permutation with sign fixup
    crb_mac_cycles: float = 5.5  # multiply-accumulate + lazy reduction

    def op_cycles(self, op: TraceOp, chain: ModulusChain, n: int) -> float:
        cost = self._op_cost(op, chain)
        butterflies = cost.ntt_passes * (n / 2) * math.log2(n)
        return (
            butterflies * self.butterfly_cycles
            + cost.mul_passes * n * self.mul_cycles
            + cost.add_passes * n * self.add_cycles
            + cost.auto_passes * n * self.auto_cycles
            + cost.crb_mac_rows * n * self.crb_mac_cycles
        )

    def _op_cost(self, op: TraceOp, chain: ModulusChain) -> kernels.OpCost:
        r = chain.residues_at(op.level)
        k = len(chain.special_moduli)
        digits = chain.ks_digits
        # On a CPU keys are precomputed in memory: no KSHGen work.
        if op.kind is OpKind.HMUL:
            return kernels.hmul_cost(r, k, digits, kshgen=False)
        if op.kind is OpKind.HROT:
            return kernels.hrot_cost(r, k, digits, kshgen=False)
        if op.kind is OpKind.HADD:
            return kernels.hadd_cost(r)
        if op.kind is OpKind.PMUL:
            return kernels.pmul_cost(r)
        if op.kind is OpKind.PADD:
            return kernels.padd_cost(r)
        if op.kind is OpKind.RESCALE:
            added, shed = _level_move(chain, op.level, op.level - 1)
            if added:
                return kernels.rescale_cost_bitpacker(r, added, shed)
            return kernels.rescale_cost_rns(r, shed)
        if op.kind is OpKind.ADJUST:
            step_level = min(op.dst_level + 1, op.level)
            r_step = chain.residues_at(step_level)
            added, shed = _level_move(chain, step_level, op.dst_level)
            if added:
                return kernels.adjust_cost_bitpacker(r_step, added, shed)
            return kernels.adjust_cost_rns(r_step, shed)
        raise SimulationError(f"unknown op kind {op.kind}")

    def run(self, trace: HeTrace, chain: ModulusChain) -> CpuResult:
        if trace.max_level != chain.max_level:
            raise SimulationError(
                f"trace {trace.name} and chain level counts differ"
            )
        result = CpuResult(
            name=trace.name, scheme=chain.scheme, clock_ghz=self.clock_ghz
        )
        for op in trace.ops:
            cycles = self.op_cycles(op, chain, trace.n) * op.count
            result.cycles += cycles
            kind_name = op.kind.value
            result.cycles_by_kind[kind_name] = (
                result.cycles_by_kind.get(kind_name, 0.0) + cycles
            )
            if op.kind in LEVEL_MANAGEMENT_KINDS:
                result.level_mgmt_cycles += cycles
        return result


def _level_move(chain: ModulusChain, src: int, dst: int) -> tuple[int, int]:
    cur = set(chain.moduli_at(src))
    target = set(chain.moduli_at(dst))
    return len(target - cur), len(cur - target)


#: Shared instance for the experiments.
DEFAULT_CPU_MODEL = CpuModel()
