#!/usr/bin/env python3
"""A complete homomorphic CKKS bootstrap, end to end, on a laptop.

Runs the textbook pipeline — ModRaise, CoeffToSlot, the sine-based
EvalMod, SlotToCoeff — entirely homomorphically (the secret key is used
only for the final check), under a BitPacker modulus chain.  Then keeps
computing on the refreshed ciphertext to prove it is a real ciphertext.

Takes a minute or two (it is ~30 ciphertext multiplies plus ~100
rotations of real encrypted arithmetic).

Run:  python examples/full_bootstrap.py
"""

import numpy as np

from repro import CkksContext, plan_bitpacker_chain
from repro.ckks.bootstrap_pipeline import PipelineConfig, bootstrap_homomorphic


def main() -> None:
    config = PipelineConfig()
    chain = plan_bitpacker_chain(
        n=128,
        word_bits=28,
        level_scale_bits=35.0,
        levels=config.depth + 2,  # one spare level to compute afterwards
        base_bits=40.0,
        ks_digits=3,
    )
    ctx = CkksContext(
        chain, seed=2024, hamming_weight=config.required_hamming_weight()
    )
    print(
        f"chain: {chain.max_level + 1} levels, pipeline depth {config.depth}, "
        f"sine degree {config.evalmod.degree}"
    )

    rng = np.random.default_rng(5)
    values = rng.uniform(-0.4, 0.4, ctx.slots)

    # Exhaust the ciphertext down to level 0 (Fig. 3's downward slope).
    ct = ctx.evaluator.adjust(ctx.encrypt(values), 0)
    print(f"before: level {ct.level} (cannot rescale further)")

    refreshed = bootstrap_homomorphic(ctx, ct, config)
    precision = ctx.precision_bits(refreshed, values)
    print(
        f"after:  level {refreshed.level}, values preserved to "
        f"{precision:.1f} error-free bits"
    )

    squared = ctx.evaluator.square_rescale(refreshed)
    sq_precision = ctx.precision_bits(squared, values**2)
    print(
        f"and computation continues: x^2 on the refreshed ciphertext is "
        f"good to {sq_precision:.1f} bits"
    )
    print("no secret key was used between encryption and the final check.")


if __name__ == "__main__":
    main()
