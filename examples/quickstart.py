#!/usr/bin/env python3
"""Quickstart: encrypted arithmetic under BitPacker vs RNS-CKKS.

Plans a modulus chain with each scheme from the same program constraints,
runs the paper's ``x^2 + x`` example (Sec. 2.2) homomorphically, and
shows the representation difference that is BitPacker's whole point:
fewer, word-packed residues for the same 240-bit modulus (paper Fig. 1).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import CkksContext, plan_bitpacker_chain, plan_rns_ckks_chain

RING_DEGREE = 1024  # small, fast parameters for a laptop demo
WORD_BITS = 28  # the datapath width BitPacker makes the sweet spot
SCALE_BITS = 40.0
LEVELS = 6


def main() -> None:
    chains = {
        "BitPacker": plan_bitpacker_chain(
            n=RING_DEGREE, word_bits=WORD_BITS, level_scale_bits=SCALE_BITS,
            levels=LEVELS, base_bits=60.0, ks_digits=2,
        ),
        "RNS-CKKS": plan_rns_ckks_chain(
            n=RING_DEGREE, word_bits=WORD_BITS, level_scale_bits=SCALE_BITS,
            levels=LEVELS, base_bits=60.0, ks_digits=2,
        ),
    }

    print("=== Modulus chains (same program constraints, both schemes) ===")
    for name, chain in chains.items():
        top = chain.max_level
        print(
            f"{name:>9}: R = {chain.residues_at(top):2d} residues for a "
            f"{chain.log2_q_at(top):.0f}-bit modulus "
            f"({chain.log2_q_at(top) / (chain.residues_at(top) * WORD_BITS):.0%} "
            "of the datapath bits used)"
        )
    print()
    print(chains["BitPacker"].describe())
    print()

    rng = np.random.default_rng(0)
    for name, chain in chains.items():
        ctx = CkksContext(chain, seed=7)
        values = rng.uniform(-1.0, 1.0, ctx.slots)

        # The paper's running example: x^2 + x needs a rescale after the
        # square and an adjust to realign the addend (Sec. 2.2).
        x = ctx.encrypt(values)
        x_squared = ctx.evaluator.square_rescale(x)
        x_adjusted = ctx.evaluator.adjust(x, x_squared.level)
        result = ctx.evaluator.add(x_squared, x_adjusted)

        expected = values**2 + values
        precision = ctx.precision_bits(result, expected)
        print(
            f"{name:>9}: x^2 + x decrypted with {precision:.1f} error-free "
            f"mantissa bits (level {result.level}, R={result.residue_count})"
        )

        # Rotations work identically under both schemes.
        rotated = ctx.evaluator.rotate(x, 3)
        rot_precision = ctx.precision_bits(rotated, np.roll(values, -3))
        print(f"{name:>9}: rotate-by-3 precision {rot_precision:.1f} bits")
    print()
    print("Same answers, same precision - BitPacker just needs fewer words.")


if __name__ == "__main__":
    main()
