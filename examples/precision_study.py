#!/usr/bin/env python3
"""Precision study: BitPacker does not trade accuracy for packing.

Runs the paper's Sec. 6.5 methodology on the functional CKKS engine:
square+rescale and one-level adjust at several scales, under 28-bit
BitPacker and (effectively) 64-bit RNS-CKKS, and prints the
box-and-whisker statistics of error-free mantissa bits (Figs. 18-19).

Takes a couple of minutes (real encrypted arithmetic).

Run:  python examples/precision_study.py [--fast]
"""

import sys

from repro.eval import fig18, fig19


def main() -> None:
    fast = "--fast" in sys.argv
    scales = (30.0, 40.0) if fast else (30.0, 40.0, 50.0, 60.0)
    samples = 6 if fast else 20
    n = 512 if fast else 2048

    print(fig18.render(fig18.run(scales=scales, samples=samples, n=n)))
    print()
    print(fig19.render(fig19.run(scales=scales, samples=samples, n=n)))


if __name__ == "__main__":
    main()
