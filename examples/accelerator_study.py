#!/usr/bin/env python3
"""Accelerator design-space study: reproduce the paper's headline sweeps.

Prices the five benchmark workloads (x two bootstrap algorithms) through
the CraterLake-class machine model at several word sizes and register-file
capacities, printing the paper-style tables for Figs. 11, 14 (condensed),
and 17.  Everything runs from the analytic model - no FHE arithmetic -
so the full study takes seconds.

Run:  python examples/accelerator_study.py
"""

from repro.eval import fig11, fig14, fig15, fig17


def main() -> None:
    print(fig11.render(fig11.run()))
    print()

    word_sizes = (28, 36, 44, 52, 60, 64)
    series = fig14.run(word_sizes=word_sizes)
    print("Fig. 14 (condensed) — BitPacker is flat, RNS-CKKS is uneven:")
    for s in series[:3]:
        bp = " ".join(f"{v:7.1f}" for v in s.bitpacker_ms)
        rns = " ".join(f"{v:7.1f}" for v in s.rns_ckks_ms)
        print(f"  {s.label}")
        print(f"    words : {' '.join(f'{w:7d}' for w in s.word_sizes)}")
        print(f"    BP ms : {bp}   (max/min {s.bp_flatness:.2f})")
        print(f"    RNS ms: {rns}   (max/min {s.rns_unevenness:.2f})")
    print()

    print(fig15.render(fig15.run(word_sizes=word_sizes)))
    print()
    print(fig17.render(fig17.run()))


if __name__ == "__main__":
    main()
