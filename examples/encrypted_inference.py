#!/usr/bin/env python3
"""Encrypted logistic-regression inference (a LogReg/HELR-style workload).

Evaluates ``sigmoid(w . x + b)`` on an encrypted feature vector:

1. elementwise plaintext multiply by the weights,
2. a rotate-and-add tree to sum the products into every slot,
3. a degree-3 polynomial sigmoid approximation (the same one HELR uses),

all under a BitPacker chain at the paper's 35-bit LogReg scale.  The
decrypted score is compared against the cleartext computation.

Run:  python examples/encrypted_inference.py
"""

import numpy as np

from repro import CkksContext, plan_bitpacker_chain

FEATURES = 64  # packed into the first 64 slots
SIGMOID_C1, SIGMOID_C3 = 0.25, -1.0 / 48.0  # degree-3 minimax-ish approx


def sigmoid_poly(t: np.ndarray) -> np.ndarray:
    return 0.5 + SIGMOID_C1 * t + SIGMOID_C3 * t**3


def encrypted_score(ctx: CkksContext, ct, weights, bias):
    """sigmoid(w.x + b) on ciphertext ``ct`` holding the features."""
    ev = ctx.evaluator

    # 1. elementwise w * x at the LogReg scale, then rescale.
    prod = ev.rescale(ev.mul_plain(ct, weights))

    # 2. rotate-and-add reduction: after log2(FEATURES) rounds every slot
    #    holds the full dot product.
    acc = prod
    shift = 1
    while shift < FEATURES:
        acc = ev.add(acc, ev.rotate(acc, shift))
        shift *= 2
    t = ev.add_plain(acc, bias)

    # 3. degree-3 sigmoid via Horner: ((c3 * t) * t) * t + c1 * t + 0.5.
    t2 = ev.square_rescale(t)
    c3t = ev.rescale(ev.mul_plain(t, SIGMOID_C3))
    c3t = ev.adjust(c3t, t2.level)
    cubic = ev.multiply_rescale(t2, c3t)
    linear = ev.rescale(ev.mul_plain(t, SIGMOID_C1))
    linear = ev.adjust(linear, cubic.level)
    out = ev.add(cubic, linear)
    return ev.add_plain(out, 0.5)


def main() -> None:
    chain = plan_bitpacker_chain(
        n=1024, word_bits=28, level_scale_bits=35.0, levels=6,
        base_bits=60.0, ks_digits=2,
    )
    ctx = CkksContext(chain, seed=3)

    rng = np.random.default_rng(1)
    features = rng.uniform(-1, 1, FEATURES)
    weights = rng.uniform(-0.2, 0.2, FEATURES)
    bias = 0.1

    packed = np.zeros(ctx.slots)
    packed[:FEATURES] = features
    w_packed = np.zeros(ctx.slots)
    w_packed[:FEATURES] = weights

    ct = ctx.encrypt(packed)
    score_ct = encrypted_score(ctx, ct, w_packed, bias)
    got = float(ctx.decrypt_real(score_ct)[0])

    t = float(weights @ features + bias)
    want = float(sigmoid_poly(np.array([t]))[0])

    print(f"encrypted sigmoid(w.x + b) = {got:.6f}")
    print(f"cleartext  sigmoid(w.x + b) = {want:.6f}")
    print(f"|error| = {abs(got - want):.2e} "
          f"({-np.log2(max(abs(got - want), 1e-18)):.1f} error-free bits)")
    print(f"levels used: {chain.max_level - score_ct.level} of {chain.max_level}")


if __name__ == "__main__":
    main()
